open Lotto_sim
module Counter = Lotto_stats.Window.Counter

type t = {
  th : Types.thread;
  counter : Counter.t;
  mutable frames : int;
  window : int;
}

let spawn_viewer kernel ~name ?(frame_cost = Time.ms 200)
    ?(window = Time.seconds 1) () =
  if frame_cost <= 0 then invalid_arg "Video.spawn_viewer: frame_cost <= 0";
  let counter = Counter.create ~width:window in
  let cell = ref None in
  let th =
    Kernel.spawn kernel ~name (fun () ->
        let self = Option.get !cell in
        while true do
          Api.compute frame_cost;
          self.frames <- self.frames + 1;
          Counter.bump counter ~time:(Api.now ())
        done)
  in
  let t = { th; counter; frames = 0; window } in
  cell := Some t;
  t

let thread t = t.th
let frames t = t.frames
let cumulative t ~upto = Counter.cumulative t.counter ~upto

let fps t ~lo ~hi =
  if hi <= lo then invalid_arg "Video.fps: empty interval";
  let ws = Counter.windows t.counter ~upto:hi in
  let first = lo / t.window and last = (hi / t.window) - 1 in
  let acc = ref 0 in
  for i = first to min last (Array.length ws - 1) do
    acc := !acc + ws.(i)
  done;
  float_of_int !acc /. Time.to_seconds (hi - lo)
