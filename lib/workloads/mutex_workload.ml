open Lotto_sim
module Series = Lotto_stats.Window.Series

type t = {
  th : Types.thread;
  waits : Series.t;
  mutable acquisitions : int;
}

let spawn_contender kernel ~mutex ~name ?(hold = Time.ms 50)
    ?(work = Time.ms 50) () =
  let waits = Series.create () in
  let cell = ref None in
  let th =
    Kernel.spawn kernel ~name (fun () ->
        let self = Option.get !cell in
        while true do
          let t0 = Api.now () in
          Api.lock mutex;
          let t1 = Api.now () in
          self.acquisitions <- self.acquisitions + 1;
          Series.record waits ~time:t1 ~value:(Time.to_seconds (t1 - t0));
          Api.compute hold;
          Api.unlock mutex;
          Api.compute work
        done)
  in
  let t = { th; waits; acquisitions = 0 } in
  cell := Some t;
  t

let thread t = t.th
let acquisitions t = t.acquisitions
let waiting_times t = Series.values t.waits

let mean_wait t =
  let xs = waiting_times t in
  if Array.length xs = 0 then nan else Lotto_stats.Descriptive.mean xs
