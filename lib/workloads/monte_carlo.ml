open Lotto_sim
module Ls = Lotto_sched.Lottery_sched
module Counter = Lotto_stats.Window.Counter
module Running = Lotto_stats.Descriptive.Running
module Rng = Lotto_prng.Rng

type t = {
  th : Types.thread;
  counter : Counter.t;
  stats : Running.t;
  mutable trials : int;
  mutable ticket_amount : int;
}

let max_ticket = 1_000_000_000

let spawn kernel ls ~name ~rng ~from ?(trial_cost = Time.us 50)
    ?(batch = 2000) ?(scale = 1e10) ?(exponent = 2.) ?(window = Time.seconds 8)
    ?(start_at = 0) () =
  if exponent <= 0. then invalid_arg "Monte_carlo.spawn: exponent <= 0";
  if batch <= 0 then invalid_arg "Monte_carlo.spawn: batch <= 0";
  if trial_cost <= 0 then invalid_arg "Monte_carlo.spawn: trial_cost <= 0";
  let counter = Counter.create ~width:window in
  let stats = Running.create () in
  let cell = ref None in
  let ticket_cell = ref None in
  let th =
    Kernel.spawn kernel ~name (fun () ->
        let self = Option.get !cell in
        let ticket = Option.get !ticket_cell in
        if start_at > 0 then Api.sleep start_at;
        while true do
          (* Charge the CPU cost, then actually run the trials so the error
             dynamics driving the feedback loop are genuine. *)
          Api.compute (batch * trial_cost);
          for _ = 1 to batch do
            let x = Rng.float_unit rng in
            Running.add stats (sqrt (1. -. (x *. x)))
          done;
          self.trials <- self.trials + batch;
          Counter.record counter ~time:(Api.now ()) ~count:batch;
          (* Dynamic inflation: ticket value proportional to a power of the
             relative error — the paper uses the square (§5.2) and notes
             (footnote 6) that any monotonically increasing function of the
             error converges, linear more slowly and cubic faster. *)
          let err = Running.stderr_of_mean stats /. Running.mean stats in
          let amount =
            if Float.is_finite err then
              int_of_float
                (Float.min (float_of_int max_ticket) (scale *. (err ** exponent)))
              |> max 1
            else max_ticket
          in
          if amount <> self.ticket_amount then begin
            Ls.set_ticket_amount ls ticket amount;
            self.ticket_amount <- amount
          end
        done)
  in
  (* Fund at spawn with the maximum amount: before any trial the task's
     error is infinite, so a newly started experiment outbids converged
     ones, exactly the catch-up dynamic of Figure 6. While the task sleeps
     until [start_at], its thread currency is inactive, so this funding
     does not dilute running siblings. *)
  let ticket = Ls.fund_thread ls th ~amount:max_ticket ~from in
  ticket_cell := Some ticket;
  let t = { th; counter; stats; trials = 0; ticket_amount = max_ticket } in
  cell := Some t;
  t

let thread t = t.th
let trials t = t.trials
let estimate t = if t.trials = 0 then nan else Running.mean t.stats
let relative_error t = Running.stderr_of_mean t.stats /. Running.mean t.stats
let current_ticket t = t.ticket_amount
let cumulative t ~upto = Counter.cumulative t.counter ~upto

let rate_per_second t ~upto =
  Counter.rates t.counter ~upto ~per:(Time.seconds 1)
