open Lotto_sim
module Rng = Lotto_prng.Rng
module Draw = Lotto_draw.Draw

type t = {
  port : Types.port;
  cylinders : int;
  tickets : (int, int) Hashtbl.t; (* client thread id -> disk tickets *)
  completed : (int, int) Hashtbl.t;
  mutable total : int;
  mutable head : int;
}

let bump tbl key delta =
  Hashtbl.replace tbl key (delta + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let disk_tickets t (th : Types.thread) =
  Option.value ~default:1 (Hashtbl.find_opt t.tickets th.id)

let start kernel ~rng ~name ?(cylinders = 1000)
    ?(seek_cost = Time.us 10) ?(transfer_cost = Time.ms 2) () =
  if cylinders <= 0 then invalid_arg "Disk_service.start: cylinders <= 0";
  if seek_cost < 0 || transfer_cost <= 0 then
    invalid_arg "Disk_service.start: bad costs";
  let port = Kernel.create_port kernel ~name:(name ^ ":port") in
  let t =
    {
      port;
      cylinders;
      tickets = Hashtbl.create 16;
      completed = Hashtbl.create 16;
      total = 0;
      head = 0;
    }
  in
  ignore
    (Kernel.spawn kernel ~name (fun () ->
         (* requests wait here between arrival and their lottery win;
            synchronous clients have at most one outstanding each *)
         let pending : Types.message list ref = ref [] in
         while true do
           (* drain new arrivals without blocking *)
           let rec drain () =
             match Api.poll_receive port with
             | Some m ->
                 pending := !pending @ [ m ];
                 drain ()
             | None -> ()
           in
           drain ();
           if !pending = [] then pending := [ Api.receive port ];
           (* lottery among queued requests, weighted by disk tickets (an
              ephemeral draw per decision, like the scheduler's waiter
              picks; reversed insertion keeps arrival-order scans) *)
           let d = Draw.of_mode Draw.List in
           List.iter
             (fun (m : Types.message) ->
               ignore
                 (Draw.add d ~client:m
                    ~weight:(float_of_int (disk_tickets t m.sender))))
             (List.rev !pending);
           let winner =
             match Draw.draw_client d rng with
             | Some m -> m
             | None -> List.hd !pending (* all zero-ticket: oldest first *)
           in
           pending := List.filter (fun (m : Types.message) -> m.msg_id <> winner.msg_id) !pending;
           let cylinder =
             match int_of_string_opt winner.payload with
             | Some c when c >= 0 && c < t.cylinders -> c
             | _ -> 0
           in
           (* the mechanical service happens in parallel with the CPU (a
              controller, not a computation): sleep, don't compute *)
           Api.sleep ((abs (cylinder - t.head) * seek_cost) + transfer_cost);
           t.head <- cylinder;
           t.total <- t.total + 1;
           bump t.completed winner.sender.id 1;
           Api.reply winner ""
         done));
  t

let set_disk_tickets t (th : Types.thread) n =
  if n < 0 then invalid_arg "Disk_service.set_disk_tickets: negative";
  Hashtbl.replace t.tickets th.id n

let read t ~cylinder =
  if cylinder < 0 || cylinder >= t.cylinders then
    invalid_arg "Disk_service.read: cylinder out of range";
  ignore (Api.rpc t.port (string_of_int cylinder))

let reads_completed t (th : Types.thread) =
  Option.value ~default:0 (Hashtbl.find_opt t.completed th.id)

let total_reads t = t.total
let head_position t = t.head
