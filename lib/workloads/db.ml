open Lotto_sim
module Series = Lotto_stats.Window.Series

type server = {
  srv_port : Types.port;
  corpus : string;
  mutable served : int;
}

let start_server kernel ~name ?(workers = 3)
    ?(query_cost = Time.seconds 2) ~corpus () =
  if workers <= 0 then invalid_arg "Db.start_server: workers <= 0";
  let srv_port = Kernel.create_port kernel ~name:(name ^ ":port") in
  let server = { srv_port; corpus; served = 0 } in
  for i = 1 to workers do
    ignore
      (Kernel.spawn kernel ~name:(Printf.sprintf "%s:worker%d" name i) (fun () ->
           while true do
             let msg = Api.receive srv_port in
             Api.compute query_cost;
             let count =
               Corpus.count_substring ~haystack:corpus ~needle:msg.payload
             in
             server.served <- server.served + 1;
             Api.reply msg (string_of_int count)
           done))
  done;
  server

let port s = s.srv_port
let queries_served s = s.served

type client = {
  th : Types.thread;
  responses : Series.t; (* time = completion instant, value = latency (s) *)
  mutable completions : int;
  mutable last_result : int option;
}

let spawn_client kernel server ~name ~query ?max_queries
    ?(start_at = 0) () =
  let responses = Series.create () in
  let cell = ref None in
  let th =
    Kernel.spawn kernel ~name (fun () ->
        let self = Option.get !cell in
        if start_at > 0 then Api.sleep start_at;
        let continue () =
          match max_queries with None -> true | Some m -> self.completions < m
        in
        while continue () do
          let t0 = Api.now () in
          let result = Api.rpc server.srv_port query in
          let t1 = Api.now () in
          self.completions <- self.completions + 1;
          self.last_result <- int_of_string_opt result;
          Series.record responses ~time:t1 ~value:(Time.to_seconds (t1 - t0))
        done)
  in
  let c = { th; responses; completions = 0; last_result = None } in
  cell := Some c;
  c

let thread c = c.th
let completions c = c.completions
let last_result c = c.last_result
let response_times c = Series.values c.responses
let completion_times c = Series.times c.responses

let mean_response_time c =
  let xs = response_times c in
  if Array.length xs = 0 then nan else Lotto_stats.Descriptive.mean xs
