module Rng = Lotto_prng.Rng

(* Consonant-vowel syllables: generated words can never contain a planted
   needle like "lottery" (no double letters / 'y' in the alphabet used). *)
let consonants = [| "b"; "c"; "d"; "f"; "g"; "h"; "k"; "m"; "n"; "p"; "r"; "s"; "t"; "v" |]
let vowels = [| "a"; "e"; "i"; "o"; "u" |]

let make_word rng =
  let syllables = 1 + Rng.int_below rng 3 in
  let buf = Buffer.create 8 in
  for _ = 1 to syllables do
    Buffer.add_string buf (Rng.choose rng consonants);
    Buffer.add_string buf (Rng.choose rng vowels)
  done;
  Buffer.contents buf

(* Zipf-ish rank weights over a fixed vocabulary. *)
let pick_rank rng n =
  (* inverse-rank weighting via rejection on the harmonic envelope *)
  let u = Rng.float_unit rng in
  let h = log (float_of_int n +. 1.) in
  let r = int_of_float (exp (u *. h)) - 1 in
  min (max r 0) (n - 1)

let generate ?(seed = 1994) ?(size_bytes = 512 * 1024)
    ?(needle = "lottery") ?(occurrences = 8) () =
  if size_bytes <= 0 then invalid_arg "Corpus.generate: size_bytes <= 0";
  if occurrences < 0 then invalid_arg "Corpus.generate: occurrences < 0";
  let rng = Rng.create ~algo:Splitmix64 ~seed () in
  let vocab_size = 4096 in
  let vocab = Array.init vocab_size (fun _ -> make_word rng) in
  let buf = Buffer.create (size_bytes + 64) in
  let line_len = ref 0 in
  while Buffer.length buf < size_bytes do
    let w = vocab.(pick_rank rng vocab_size) in
    Buffer.add_string buf w;
    line_len := !line_len + String.length w + 1;
    if !line_len > 60 then begin
      Buffer.add_char buf '\n';
      line_len := 0
    end
    else Buffer.add_char buf ' '
  done;
  let text = Buffer.contents buf in
  if occurrences = 0 then text
  else begin
    (* Plant the needle at evenly spaced word boundaries. *)
    let chunk = String.length text / occurrences in
    let out = Buffer.create (String.length text + (occurrences * (String.length needle + 2))) in
    let pos = ref 0 in
    for i = 0 to occurrences - 1 do
      let target = min (String.length text - 1) (((i + 1) * chunk) - (chunk / 2)) in
      (* advance to the next space so we insert at a word boundary *)
      let rec boundary j =
        if j >= String.length text - 1 then String.length text - 1
        else if text.[j] = ' ' || text.[j] = '\n' then j
        else boundary (j + 1)
      in
      let b = boundary target in
      Buffer.add_string out (String.sub text !pos (b - !pos));
      Buffer.add_string out (" " ^ needle);
      pos := b
    done;
    Buffer.add_string out (String.sub text !pos (String.length text - !pos));
    Buffer.contents out
  end

let count_substring ~haystack ~needle =
  if needle = "" then invalid_arg "Corpus.count_substring: empty needle";
  let h = String.lowercase_ascii haystack in
  let n = String.lowercase_ascii needle in
  let nh = String.length h and nn = String.length n in
  let count = ref 0 in
  let i = ref 0 in
  while !i <= nh - nn do
    let j = ref 0 in
    while !j < nn && h.[!i + !j] = n.[!j] do
      incr j
    done;
    if !j = nn then begin
      incr count;
      i := !i + nn
    end
    else incr i
  done;
  !count
