(* Benchmark harness.

   Part 1 regenerates every figure/table from the paper's evaluation (the
   experiment modules print the same rows/series the paper reports).

   Part 2 runs Bechamel microbenchmarks for the mechanisms the paper costs
   out in §4.2 and §5.6: list vs tree lottery draws across client counts,
   whole-kernel scheduling decisions under each policy, currency-graph
   valuation, and the PRNGs. *)

open Bechamel
open Toolkit

(* --- part 1: figure regeneration -------------------------------------- *)

let figures () =
  print_endline "=================================================================";
  print_endline " Paper evaluation reproduction (see EXPERIMENTS.md for analysis)";
  print_endline "=================================================================";
  Lotto_exp.Fig4.(print (run ()));
  Lotto_exp.Fig5.(print (run ()));
  Lotto_exp.Fig6.(print (run ()));
  Lotto_exp.Fig7.(print (run ()));
  Lotto_exp.Fig8.(print (run ()));
  Lotto_exp.Fig9.(print (run ()));
  Lotto_exp.Fig11.(print (run ()));
  Lotto_exp.Compensation.(print (run ()));
  Lotto_exp.Overhead.(print (run ()));
  Lotto_exp.Mem.(print (run ()));
  Lotto_exp.Io.(print (run ()));
  Lotto_exp.Disk_exp.(print (run ()));
  Lotto_exp.Switch_exp.(print (run ()));
  Lotto_exp.Ablation_quantum.(print (run ()));
  Lotto_exp.Ablation_variance.(print (run ()));
  Lotto_exp.Disk_service_exp.(print (run ()));
  Lotto_exp.Manager_exp.(print (run ()));
  Lotto_exp.Ablation_mc.(print (run ()));
  Lotto_exp.Search_length.(print (run ()))

(* --- part 2: microbenchmarks ------------------------------------------- *)

let draw_bench_sizes = [ 4; 16; 64; 256; 1024 ]

(* one lottery draw, list vs tree, across client counts (paper §4.2: the
   tree needs only lg n work) *)
let list_draw_test n =
  let rng = Core.Rng.create ~seed:1 () in
  let t = Core.List_lottery.create () in
  for i = 1 to n do
    ignore (Core.List_lottery.add t ~client:i ~weight:(float_of_int i))
  done;
  Test.make
    ~name:(Printf.sprintf "draw/list/%04d" n)
    (Staged.stage (fun () -> ignore (Core.List_lottery.draw t rng)))

let sorted_list_draw_test n =
  let rng = Core.Rng.create ~seed:1 () in
  let t = Core.List_lottery.create ~order:Core.List_lottery.By_weight () in
  for i = 1 to n do
    ignore (Core.List_lottery.add t ~client:i ~weight:(float_of_int i))
  done;
  Test.make
    ~name:(Printf.sprintf "draw/list-sorted/%04d" n)
    (Staged.stage (fun () -> ignore (Core.List_lottery.draw t rng)))

let distributed_draw_test n =
  let rng = Core.Rng.create ~seed:1 () in
  let t = Core.Distributed_lottery.create ~nodes:16 () in
  for i = 1 to n do
    ignore
      (Core.Distributed_lottery.add_on t ~node:(i mod 16) ~client:i
         ~weight:(float_of_int i))
  done;
  Test.make
    ~name:(Printf.sprintf "draw/distributed16/%04d" n)
    (Staged.stage (fun () -> ignore (Core.Distributed_lottery.draw t rng)))

(* the unified Draw front-end every subsystem now draws through: same
   operation across backends, so the numbers are directly comparable *)
let draw_backend_sizes = [ 10; 100; 1000 ]

let draw_backend_test mode mode_name n =
  let rng = Core.Rng.create ~seed:1 () in
  let t = Core.Draw.of_mode mode in
  for i = 1 to n do
    ignore (Core.Draw.add t ~client:i ~weight:(float_of_int i))
  done;
  Test.make
    ~name:(Printf.sprintf "draw-backend/%s/%04d" mode_name n)
    (Staged.stage (fun () -> ignore (Core.Draw.draw_client t rng)))

(* a resource-manager draw end to end: one io-bandwidth slot among n
   permanently backlogged clients, list vs tree backend *)
let resmgr_draw_test backend backend_name n =
  let rng = Core.Rng.create ~seed:5 () in
  let io = Core.Io_bandwidth.create ~backend ~rng () in
  for i = 1 to n do
    let c =
      Core.Io_bandwidth.add_client io
        ~name:(Printf.sprintf "c%d" i)
        ~tickets:(10 * i)
    in
    Core.Io_bandwidth.submit io c ~requests:1_000_000_000
  done;
  Test.make
    ~name:(Printf.sprintf "resmgr-draw/io-%s/%04d" backend_name n)
    (Staged.stage (fun () -> ignore (Core.Io_bandwidth.serve_slot io)))

let tree_draw_test n =
  let rng = Core.Rng.create ~seed:1 () in
  let t = Core.Tree_lottery.create () in
  for i = 1 to n do
    ignore (Core.Tree_lottery.add t ~client:i ~weight:(float_of_int i))
  done;
  Test.make
    ~name:(Printf.sprintf "draw/tree/%04d" n)
    (Staged.stage (fun () -> ignore (Core.Tree_lottery.draw t rng)))

(* a full scheduling decision: one kernel quantum under each policy with 8
   compute-bound threads (the §5.6 overhead comparison, distilled) *)
let kernel_step_test name make_sched fund =
  let sched, fund_thread = make_sched () in
  let k = Core.Kernel.create ~sched () in
  for i = 1 to 8 do
    let th =
      Core.Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
          while true do
            Core.Api.compute (Core.Time.ms 100)
          done)
    in
    if fund then fund_thread th (100 * i)
  done;
  Test.make
    ~name:(Printf.sprintf "kernel-quantum/%s" name)
    (Staged.stage (fun () ->
         ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100))))

(* observability tax on the scheduling hot path: the same lottery-list
   kernel quantum with no bus subscribers (emission compiles down to one
   branch), with a trace recorder attached, and with the metrics registry
   attached (§ tentpole acceptance: zero-subscriber stepping must stay
   within noise of the pre-bus kernel) *)
let kernel_obs_test name attach =
  let rng = Core.Rng.create ~seed:2 () in
  let ls = Core.Lottery_sched.create ~rng () in
  let k = Core.Kernel.create ~sched:(Core.Lottery_sched.sched ls) () in
  for i = 1 to 8 do
    let th =
      Core.Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
          while true do
            Core.Api.compute (Core.Time.ms 100)
          done)
    in
    ignore
      (Core.Lottery_sched.fund_thread ls th ~amount:(100 * i)
         ~from:(Core.Lottery_sched.base_currency ls))
  done;
  attach (Core.Kernel.bus k);
  Test.make
    ~name:(Printf.sprintf "kernel-quantum/%s" name)
    (Staged.stage (fun () ->
         ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100))))

let obs_none_test () = kernel_obs_test "obs-none" (fun _ -> ())

(* pre-select hook tax: the same lottery-list kernel quantum with no hook
   installed (the common case — one option match per slice), with a no-op
   hook, and with a zero-probability chaos injector attached (§ chaos
   acceptance: an absent hook must cost nothing measurable) *)
let kernel_hook_test name install =
  let rng = Core.Rng.create ~seed:2 () in
  let ls = Core.Lottery_sched.create ~rng () in
  let k = Core.Kernel.create ~sched:(Core.Lottery_sched.sched ls) () in
  for i = 1 to 8 do
    let th =
      Core.Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
          while true do
            Core.Api.compute (Core.Time.ms 100)
          done)
    in
    ignore
      (Core.Lottery_sched.fund_thread ls th ~amount:(100 * i)
         ~from:(Core.Lottery_sched.base_currency ls))
  done;
  install k;
  Test.make
    ~name:(Printf.sprintf "kernel-quantum/%s" name)
    (Staged.stage (fun () ->
         ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100))))

let hook_absent_test () = kernel_hook_test "hook-absent" (fun _ -> ())

let hook_noop_test () =
  kernel_hook_test "hook-noop" (fun k ->
      Core.Kernel.set_pre_select k (Some (fun () -> ())))

let hook_injector_test () =
  kernel_hook_test "hook-injector-idle" (fun k ->
      let inj =
        Core.Chaos.Injector.create ~plan:Core.Chaos.Plan.none
          ~rng:(Core.Rng.create ~seed:9 ())
          ~kernel:k ()
      in
      Core.Kernel.set_pre_select k (Some (fun () -> Core.Chaos.Injector.step inj)))

let obs_recorder_test () =
  kernel_obs_test "obs-recorder" (fun bus ->
      Core.Obs.Recorder.attach (Core.Obs.Recorder.create ~capacity:(1 lsl 16) ()) bus)

let obs_metrics_test () =
  kernel_obs_test "obs-metrics" (fun bus ->
      Core.Obs.Metrics.attach (Core.Obs.Metrics.create ()) bus)

let lottery_sched_maker mode () =
  let rng = Core.Rng.create ~seed:2 () in
  let ls = Core.Lottery_sched.create ~mode ~rng () in
  ( Core.Lottery_sched.sched ls,
    fun th amount ->
      ignore
        (Core.Lottery_sched.fund_thread ls th ~amount
           ~from:(Core.Lottery_sched.base_currency ls)) )

let stride_maker () =
  let st = Core.Stride_sched.create () in
  (Core.Stride_sched.sched st, fun th n -> Core.Stride_sched.set_tickets st th n)

let rr_maker () =
  (Core.Round_robin.sched (Core.Round_robin.create ()), fun _ _ -> ())

let decay_maker () =
  (Core.Decay_usage.sched (Core.Decay_usage.create ()), fun _ _ -> ())

(* currency-graph valuation cost: a deep funding chain and a wide currency *)
let valuation_chain_test depth =
  let sys = Core.Funding.create_system () in
  let base = Core.Funding.base sys in
  let rec build from i =
    if i = depth then from
    else begin
      let c = Core.Funding.make_currency sys ~name:(Printf.sprintf "chain%d" i) in
      let t = Core.Funding.issue sys ~currency:from ~amount:100 in
      Core.Funding.fund sys ~ticket:t ~currency:c;
      build c (i + 1)
    end
  in
  let bottom = build base 0 in
  let held = Core.Funding.issue sys ~currency:bottom ~amount:10 in
  Core.Funding.hold sys held;
  Test.make
    ~name:(Printf.sprintf "valuation/chain-depth-%02d" depth)
    (Staged.stage (fun () -> ignore (Core.Funding.ticket_value sys held)))

let valuation_wide_test width =
  let sys = Core.Funding.create_system () in
  let base = Core.Funding.base sys in
  let c = Core.Funding.make_currency sys ~name:"wide" in
  for _ = 1 to width do
    let t = Core.Funding.issue sys ~currency:base ~amount:10 in
    Core.Funding.fund sys ~ticket:t ~currency:c
  done;
  let held = Core.Funding.issue sys ~currency:c ~amount:10 in
  Core.Funding.hold sys held;
  Test.make
    ~name:(Printf.sprintf "valuation/wide-%03d" width)
    (Staged.stage (fun () -> ignore (Core.Funding.ticket_value sys held)))

(* Incremental valuation under scheduler churn (the point of the scoped
   change events): n runnable funded threads; one operation blocks a thread,
   holds a lottery, wakes it, and holds another. The incremental path pays
   O(1) valuation work per operation regardless of n. The [-fullrefresh]
   baseline calls {!Core.Lottery_sched.mark_dirty} before every select,
   recomputing all n weights per lottery — the behaviour this replaces. *)
let churn_sizes = [ 100; 1000; 10000 ]

let bench_thread id =
  {
    Core.Types.id;
    tslot = id;
    name = Printf.sprintf "t%d" id;
    state = Core.Types.Runnable;
    pending = Core.Types.Exited;
    cpu = 0;
    compensate = 1.;
    donating_to = [];
    donors = [];
    owned = [];
    failure = None;
    joiners = [];
    servicing = [];
    created_at = 0;
    exited_at = None;
  }

let churn_test mode mode_name ~full n =
  let rng = Core.Rng.create ~seed:7 () in
  let ls = Core.Lottery_sched.create ~mode ~rng () in
  let s = Core.Lottery_sched.sched ls in
  let threads = Array.init n bench_thread in
  let base = Core.Lottery_sched.base_currency ls in
  Array.iter
    (fun th ->
      s.Core.Types.attach th;
      ignore (Core.Lottery_sched.fund_thread ls th ~amount:100 ~from:base))
    threads;
  ignore (s.Core.Types.select ~cpu:0) (* settle creation-time funding events *);
  let i = ref 0 in
  Test.make
    ~name:
      (Printf.sprintf "valuation/churn-%s%s/%05d" mode_name
         (if full then "-fullrefresh" else "")
         n)
    (Staged.stage (fun () ->
         let th = threads.(!i) in
         i := (!i + 37) mod n;
         s.Core.Types.unready th;
         if full then Core.Lottery_sched.mark_dirty ls;
         ignore (s.Core.Types.select ~cpu:0);
         s.Core.Types.ready th;
         if full then Core.Lottery_sched.mark_dirty ls;
         ignore (s.Core.Types.select ~cpu:0)))

(* --- part 2b: arena scale family (10^5 / 10^6 entities) ---------------- *)

(* The acceptance family for the arena representation: the same full-slice
   operation as the churn tests (block, lottery, wake, lottery — valuation
   flush plus two tree draws) at 10^4, 10^5 and 10^6 threads. With the old
   hashtable/list representation the constant factors and rehash stalls
   made the slice drift toward linear; on flat arenas it must stay polylog:
   the ns-per-slice at 10^6 is gated (see the derived -over- row) at ~2× of
   10^4, i.e. pure lg n growth plus cache effects, not n. *)
let scale_slice_sizes = [ 10_000; 100_000; 1_000_000 ]

let scale_slice_test n =
  let rng = Core.Rng.create ~seed:7 () in
  let ls = Core.Lottery_sched.create ~mode:Core.Lottery_sched.Tree_mode ~rng () in
  let s = Core.Lottery_sched.sched ls in
  let threads = Array.init n bench_thread in
  let base = Core.Lottery_sched.base_currency ls in
  Array.iter
    (fun th ->
      s.Core.Types.attach th;
      ignore (Core.Lottery_sched.fund_thread ls th ~amount:100 ~from:base))
    threads;
  ignore (s.Core.Types.select ~cpu:0) (* settle creation-time funding events *);
  let i = ref 0 in
  Test.make
    ~name:(Printf.sprintf "slice-tree/%07d" n)
    (Staged.stage (fun () ->
         let th = threads.(!i) in
         i := (!i + 37) mod n;
         s.Core.Types.unready th;
         ignore (s.Core.Types.select ~cpu:0);
         s.Core.Types.ready th;
         ignore (s.Core.Types.select ~cpu:0)))

(* The same population through the real kernel: one 100 ms quantum per
   operation — select (tree draw over n runnable threads), dispatch into
   the effect handler, account. *)
let scale_quantum_sizes = [ 10_000; 100_000 ]

let scale_quantum_test n =
  let rng = Core.Rng.create ~seed:8 () in
  let ls = Core.Lottery_sched.create ~mode:Core.Lottery_sched.Tree_mode ~rng () in
  let k = Core.Kernel.create ~sched:(Core.Lottery_sched.sched ls) () in
  let base = Core.Lottery_sched.base_currency ls in
  for i = 1 to n do
    let th =
      Core.Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
          while true do
            Core.Api.compute (Core.Time.ms 100)
          done)
    in
    ignore (Core.Lottery_sched.fund_thread ls th ~amount:100 ~from:base)
  done;
  ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100));
  Test.make
    ~name:(Printf.sprintf "kernel-quantum-tree/%07d" n)
    (Staged.stage (fun () ->
         ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100))))

(* Arena recycling under a live population: spawn a thread and kill it —
   slot alloc/release, currency and ticket arena churn, O(degree) death —
   with 10^5 funded threads resident. *)
let scale_lifecycle_test n =
  let rng = Core.Rng.create ~seed:9 () in
  let ls = Core.Lottery_sched.create ~mode:Core.Lottery_sched.Tree_mode ~rng () in
  let k = Core.Kernel.create ~sched:(Core.Lottery_sched.sched ls) () in
  let base = Core.Lottery_sched.base_currency ls in
  for i = 1 to n do
    let th =
      Core.Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
          while true do
            Core.Api.compute (Core.Time.ms 100)
          done)
    in
    ignore (Core.Lottery_sched.fund_thread ls th ~amount:100 ~from:base)
  done;
  let j = ref 0 in
  Test.make
    ~name:(Printf.sprintf "lifecycle-tree/%07d" n)
    (Staged.stage (fun () ->
         incr j;
         let th =
           Core.Kernel.spawn k ~name:(Printf.sprintf "x%d" !j) (fun () -> ())
         in
         Core.Kernel.kill k th))

let scale_tests () =
  Test.make_grouped ~name:"scale-arena"
    (List.map scale_slice_test scale_slice_sizes
    @ List.map scale_quantum_test scale_quantum_sizes
    @ [ scale_lifecycle_test 100_000 ])

(* The wall-clock smoke CI runs under a timeout: create 10^5 threads, run
   real quanta, block/wake churn with a lottery per transition, then mass
   kills with the audit on. Any representation regression that turns a
   slice O(n) blows the timeout; the hard checks at the end catch recycling
   bugs. *)
let scale_smoke () =
  let n = 100_000 in
  let t0 = Unix.gettimeofday () in
  let rng = Core.Rng.create ~seed:3 () in
  let ls = Core.Lottery_sched.create ~mode:Core.Lottery_sched.Tree_mode ~rng () in
  let s = Core.Lottery_sched.sched ls in
  let k = Core.Kernel.create ~sched:s () in
  let base = Core.Lottery_sched.base_currency ls in
  let threads =
    Array.init n (fun i ->
        let th =
          Core.Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
              while true do
                Core.Api.compute (Core.Time.ms 100)
              done)
        in
        ignore (Core.Lottery_sched.fund_thread ls th ~amount:100 ~from:base);
        th)
  in
  let t1 = Unix.gettimeofday () in
  Printf.printf "scale-smoke: created and funded %d threads in %.2f s\n%!" n
    (t1 -. t0);
  ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 2_000));
  let t2 = Unix.gettimeofday () in
  Printf.printf "scale-smoke: 20 kernel quanta in %.2f s\n%!" (t2 -. t1);
  let cycles = 50_000 in
  for i = 0 to cycles - 1 do
    let th = threads.(i * 37 mod n) in
    s.Core.Types.unready th;
    ignore (s.Core.Types.select ~cpu:0);
    s.Core.Types.ready th;
    ignore (s.Core.Types.select ~cpu:0)
  done;
  let t3 = Unix.gettimeofday () in
  Printf.printf "scale-smoke: %d block/wake cycles (two draws each) in %.2f s\n%!"
    cycles (t3 -. t2);
  let kills = 10_000 in
  for i = 0 to kills - 1 do
    Core.Kernel.kill k threads.(i)
  done;
  for i = 0 to kills - 1 do
    ignore
      (Core.Kernel.spawn k ~name:(Printf.sprintf "r%d" i) (fun () ->
           while true do
             Core.Api.compute (Core.Time.ms 100)
           done))
  done;
  let t4 = Unix.gettimeofday () in
  Printf.printf "scale-smoke: %d kills + %d respawns (recycled slots) in %.2f s\n%!"
    kills kills (t4 -. t3);
  let live = Core.Kernel.live_thread_count k in
  if live <> n then begin
    Printf.printf "scale-smoke: FAIL live_thread_count %d <> %d\n" live n;
    exit 1
  end;
  (match Core.Kernel.check_invariants k with
  | [] -> ()
  | violations ->
      List.iter (Printf.printf "scale-smoke: FAIL %s\n") violations;
      exit 1);
  let t5 = Unix.gettimeofday () in
  Printf.printf
    "scale-smoke: O(live) kernel audit over %d live threads in %.2f s\n%!" live
    (t5 -. t4);
  Printf.printf "scale-smoke: OK (%.2f s total)\n%!" (t5 -. t0)

(* --- part 3: domain-parallel replication wall-clock -------------------- *)

(* Wall-clock of a representative figure subset — the sweep experiments
   whose replications Lotto_par fans out across domains — at 1, 2, 4 and
   8 jobs. Reduced durations keep one pass to a few seconds; the outputs
   are byte-identical across jobs (test_parallel checks this), so only
   the elapsed time varies. Measured with [Unix.gettimeofday] (wall
   clock): process CPU time would sum across domains and hide any
   speedup. The [par/recommended-domains] row records the host's domain
   count so a snapshot from a single-core machine (where speedup is
   physically impossible) is legible as such. *)

let par_jobs = [ 1; 2; 4; 8 ]

let figset ~jobs () =
  ignore
    (Lotto_exp.Fig4.run ~jobs ~duration:(Core.Time.seconds 20) ~runs_per_ratio:2 ());
  ignore (Lotto_exp.Ablation_quantum.run ~jobs ~duration:(Core.Time.seconds 30) ());
  ignore (Lotto_exp.Ablation_mc.run ~jobs ~duration:(Core.Time.seconds 60) ());
  ignore (Lotto_exp.Ablation_variance.run ~jobs ~duration:(Core.Time.seconds 60) ());
  ignore (Lotto_exp.Search_length.run ~jobs ~draws:20_000 ());
  ignore (Lotto_exp.Compensation.run ~jobs ~duration:(Core.Time.seconds 30) ())

let par_rows () =
  let timed jobs =
    let t0 = Unix.gettimeofday () in
    figset ~jobs ();
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "  par/figset-%d: %.2f s wall clock\n%!" jobs dt;
    (Printf.sprintf "par/figset-%d" jobs, dt *. 1e9)
  in
  print_endline "";
  print_endline "=================================================================";
  print_endline " Domain-parallel replication (wall clock per figure-subset pass)";
  print_endline "=================================================================";
  Printf.printf "  host recommended domain count: %d\n%!"
    (Domain.recommended_domain_count ());
  List.map timed par_jobs
  @ [
      ( "par/recommended-domains",
        float_of_int (Domain.recommended_domain_count ()) );
    ]

(* --- observability overhead family ------------------------------------- *)

(* The RPC-heavy kernel quantum the span tracer taxes most: four
   client/server pairs ping-ponging continuously with 1ms of service per
   request, so one measured quantum carries dozens of RPC round trips.
   Variants attach nothing (bus idle: event construction compiles to one
   branch), the metrics registry (counters + histograms), or the span
   tracer. The gate compares spans against off. *)
let kernel_rpc_obs_test name attach =
  let rng = Core.Rng.create ~seed:3 () in
  let ls = Core.Lottery_sched.create ~rng () in
  let k = Core.Kernel.create ~sched:(Core.Lottery_sched.sched ls) () in
  let fund th =
    ignore
      (Core.Lottery_sched.fund_thread ls th ~amount:100
         ~from:(Core.Lottery_sched.base_currency ls))
  in
  for i = 1 to 4 do
    let port = Core.Kernel.create_port k ~name:(Printf.sprintf "p%d" i) in
    fund
      (Core.Kernel.spawn k ~name:(Printf.sprintf "srv%d" i) (fun () ->
           while true do
             let m = Core.Api.receive port in
             Core.Api.compute (Core.Time.ms 1);
             Core.Api.reply m m.Core.Types.payload
           done));
    fund
      (Core.Kernel.spawn k ~name:(Printf.sprintf "cli%d" i) (fun () ->
           while true do
             ignore (Core.Api.rpc port "x")
           done))
  done;
  attach (Core.Kernel.bus k);
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100))))

(* the Hdr.record hot path in isolation; measured for time AND minor words
   — the budget pins the words at zero (within OLS noise) *)
let hdr_record_test () =
  let h = Core.Obs.Hdr.create () in
  let i = ref 0 in
  Test.make ~name:"hdr"
    (Staged.stage (fun () ->
         i := (!i + 7919) land 0xFFFFF;
         Core.Obs.Hdr.record h !i))

let obs_tests () =
  Test.make_grouped ~name:"obs-overhead"
    [
      kernel_rpc_obs_test "off" (fun _ -> ());
      kernel_rpc_obs_test "counters" (fun bus ->
          Core.Obs.Metrics.attach (Core.Obs.Metrics.create ()) bus);
      kernel_rpc_obs_test "spans" (fun bus ->
          Core.Obs.Span.attach (Core.Obs.Span.create ()) bus);
      hdr_record_test ();
    ]

(* --- hot-path allocation + flat-draw families --------------------------- *)

(* The steady-state scheduling decision — valuation read, draw, dispatch,
   account, observability off — measured under [minor_allocated] as well as
   the clock. The decision path is allocation-free by construction (slot
   draws, cached weights, preallocated [Some th]); the budget pins the
   per-quantum words at zero modulo fit noise for every backend. *)
let decision_mode_test mode name =
  let sched, fund = lottery_sched_maker mode () in
  let k = Core.Kernel.create ~sched () in
  for i = 1 to 8 do
    let th =
      Core.Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
          while true do
            Core.Api.compute (Core.Time.ms 100)
          done)
    in
    fund th (100 * i)
  done;
  (* one warm quantum: arena growth, pending-funding flush and thread
     startup happen here, outside the measured steady state *)
  ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100));
  Test.make
    ~name:(Printf.sprintf "decision-%s" name)
    (Staged.stage (fun () ->
         ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100))))

(* the same decision gate in sharded mode: a 4-shard scheduler on a 4-CPU
   kernel, so each measured operation is one round — four selects (one
   per shard, shard-tree bookkeeping included) and four dispatches — and
   must still allocate nothing *)
let decision_sharded_test () =
  let rng = Core.Rng.create ~seed:2 () in
  let ls =
    Core.Lottery_sched.create ~mode:Core.Lottery_sched.Tree_mode ~shards:4 ~rng
      ()
  in
  let k = Core.Kernel.create ~cpus:4 ~sched:(Core.Lottery_sched.sched ls) () in
  for i = 1 to 8 do
    let th =
      Core.Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
          while true do
            Core.Api.compute (Core.Time.ms 100)
          done)
    in
    ignore
      (Core.Lottery_sched.fund_thread ls th ~amount:(100 * i)
         ~from:(Core.Lottery_sched.base_currency ls))
  done;
  ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100));
  Test.make ~name:"decision-sharded"
    (Staged.stage (fun () ->
         ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100))))

let hotpath_tests () =
  Test.make_grouped ~name:"hotpath"
    [
      decision_mode_test Core.Lottery_sched.List_mode "list";
      decision_mode_test Core.Lottery_sched.Tree_mode "tree";
      decision_mode_test Core.Lottery_sched.Cumul_mode "cumul";
      decision_mode_test Core.Lottery_sched.Alias_mode "alias";
      decision_sharded_test ();
    ]

(* Batch amortization: serving a winner mutates its weight (compensation
   tickets in the scheduler, pending counts in the managers), dirtying the
   flat tables. Slot-at-a-time every draw then pays the O(n) lazy rebuild;
   [draw_k] pays it once per batch. Both variants do the same 64 draws and
   the same 64 weight writes over 1024 clients — only the rebuild count
   differs. The derived [draw_k-over-singles] row is gated at 0.5 (the
   acceptance floor: batching at k=64 must be at least 2x faster). *)
let batch_n = 1024
let batch_k = 64

let batch_setup () =
  let rng = Core.Rng.create ~seed:11 () in
  let t = Core.Alias_lottery.create () in
  let hs =
    Array.init batch_n (fun i ->
        Core.Alias_lottery.add t ~client:i
          ~weight:(float_of_int (1 + (i land 7))))
  in
  (rng, t, hs)

let batch_singles_test () =
  let rng, t, hs = batch_setup () in
  Test.make ~name:(Printf.sprintf "singles-%d" batch_k)
    (Staged.stage (fun () ->
         for _ = 1 to batch_k do
           let s = Core.Alias_lottery.draw_slot t rng in
           if s >= 0 then
             Core.Alias_lottery.set_weight t hs.(s)
               (float_of_int (1 + (s land 7)))
         done))

let batch_draw_k_test () =
  let rng, t, hs = batch_setup () in
  let out = Array.make batch_k (-1) in
  Test.make ~name:(Printf.sprintf "draw_k-%d" batch_k)
    (Staged.stage (fun () ->
         let n = Core.Alias_lottery.draw_k t rng ~k:batch_k out in
         for i = 0 to n - 1 do
           let s = out.(i) in
           Core.Alias_lottery.set_weight t hs.(s)
             (float_of_int (1 + (s land 7)))
         done))

let batch_tests () =
  Test.make_grouped ~name:"batch-draw"
    [ batch_singles_test (); batch_draw_k_test () ]

(* The same amortization measured end to end through the disk manager: an
   epoch workload submits one request to every client, then drains the
   whole backlog. Every serve empties its winner's queue, writing a zero
   weight that dirties the alias table — unbatched service rebuilds it on
   the very next draw (O(n) per serve, O(n^2) per epoch), while the
   pre-drawn batch merely skips drained winners at consume time and pays
   the rebuild once per 64-slot refill. The derived [epoch-batched-over-
   singles] row shows the win. *)
let disk_epoch_n = 256

let disk_epoch_test ~batch name =
  let rng = Core.Rng.create ~seed:31 () in
  let d = Core.Disk.create ~backend:Core.Draw.Alias ~batch ~rng () in
  let clients =
    Array.init disk_epoch_n (fun i ->
        Core.Disk.add_client d
          ~name:(Printf.sprintf "c%03d" i)
          ~tickets:(1 + (i land 7)))
  in
  Test.make ~name
    (Staged.stage (fun () ->
         Array.iteri
           (fun i c -> Core.Disk.submit d c ~cylinder:(i * 37 mod 1000))
           clients;
         let rec drain () =
           match Core.Disk.serve_one d with Some _ -> drain () | None -> ()
         in
         drain ()))

let disk_batch_tests () =
  Test.make_grouped ~name:"disk-batch"
    [
      disk_epoch_test ~batch:false "epoch-singles";
      disk_epoch_test ~batch:true "epoch-batched";
    ]

(* Quiescent draws across four orders of magnitude: with the tables built
   and the weights untouched, a Cumul draw is one binary search over a flat
   prefix-sum array and an Alias draw is one deviate, one compare and at
   most two array reads — no rebuild, no allocation. The derived -over-
   rows record the 10^2 -> 10^6 growth (the O(1)/O(log n) claim: cache
   effects and lg n, not n) and the tree-relative cost at 10^4+. *)
let flat_sizes = [ 100; 10_000; 1_000_000 ]

let flat_draw_test mode name n =
  let rng = Core.Rng.create ~seed:13 () in
  let t = Core.Draw.of_mode mode in
  for i = 1 to n do
    ignore (Core.Draw.add t ~client:i ~weight:(float_of_int (1 + (i land 15))))
  done;
  (* pay the lazy rebuild here, outside the measured quiescent draws *)
  ignore (Core.Draw.draw_slot t rng);
  Test.make
    ~name:(Printf.sprintf "%s/%07d" name n)
    (Staged.stage (fun () -> ignore (Core.Draw.draw_slot t rng)))

let flat_tests () =
  Test.make_grouped ~name:"draw-quiescent"
    (List.concat_map
       (fun n ->
         [
           flat_draw_test Core.Draw.Tree "tree" n;
           flat_draw_test Core.Draw.Cumul "cumul" n;
           flat_draw_test Core.Draw.Alias "alias" n;
         ])
       flat_sizes)

(* --- smp family: sharded lotteries across virtual CPUs ------------------ *)

(* One kernel round at c CPUs over n uniformly funded spinners: every CPU
   at the round floor selects (CPU-id order), then the selected slices
   run. The 1-CPU rows use the historical unsharded scheduler — the
   baseline every sharded row is judged against; c > 1 rows shard the
   lottery one shard per CPU. A c-CPU round serves c slices, so the
   per-slice host cost is row/c — all virtual CPUs execute on one host
   core, which is why the acceptance throughput gate below is measured in
   virtual time, not host ns. *)
let smp_round_sizes = [ 10_000; 100_000 ]
let smp_cpu_counts = [ 1; 2; 4; 8 ]

let smp_sched ~cpus ~seed =
  let rng = Core.Rng.create ~seed () in
  if cpus = 1 then
    Core.Lottery_sched.create ~mode:Core.Lottery_sched.Tree_mode ~rng ()
  else
    Core.Lottery_sched.create ~mode:Core.Lottery_sched.Tree_mode ~shards:cpus
      ~rng ()

let smp_round_test ~cpus n =
  let ls = smp_sched ~cpus ~seed:17 in
  let k = Core.Kernel.create ~cpus ~sched:(Core.Lottery_sched.sched ls) () in
  let base = Core.Lottery_sched.base_currency ls in
  for i = 1 to n do
    let th =
      Core.Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
          while true do
            Core.Api.compute (Core.Time.ms 100)
          done)
    in
    ignore (Core.Lottery_sched.fund_thread ls th ~amount:100 ~from:base)
  done;
  ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100));
  Test.make
    ~name:(Printf.sprintf "round-%dcpu/%07d" cpus n)
    (Staged.stage (fun () ->
         ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100))))

(* The slice decision alone at 10^6 threads, without kernel coroutines:
   select + account driven directly against the sched contract, cycling
   the selecting CPU. Sharded select dequeues the winner (smp semantics),
   account re-enqueues it. *)
let smp_slice_test ~cpus n =
  let ls = smp_sched ~cpus ~seed:19 in
  let s = Core.Lottery_sched.sched ls in
  let base = Core.Lottery_sched.base_currency ls in
  let threads = Array.init n bench_thread in
  Array.iter
    (fun th ->
      s.Core.Types.attach th;
      ignore (Core.Lottery_sched.fund_thread ls th ~amount:100 ~from:base))
    threads;
  (* settle creation-time funding events; re-enqueue the dequeued winner *)
  (match s.Core.Types.select ~cpu:0 with
  | Some th when cpus > 1 ->
      s.Core.Types.account th ~used:100 ~quantum:100 ~blocked:false
  | _ -> ());
  let cpu = ref 0 in
  Test.make
    ~name:(Printf.sprintf "slice-%dcpu/%07d" cpus n)
    (Staged.stage (fun () ->
         (match s.Core.Types.select ~cpu:!cpu with
         | Some th ->
             s.Core.Types.account th ~used:100 ~quantum:100 ~blocked:false
         | None -> ());
         cpu := (!cpu + 1) mod cpus))

(* Each timing test is built lazily and measured in its own family so only
   one setup (up to a 10^6-thread scheduler) is live at a time — holding
   them all simultaneously inflates every row with cache and GC pressure
   from the others' heaps. *)
let smp_time_thunks () =
  List.concat_map
    (fun n -> List.map (fun cpus () -> smp_round_test ~cpus n) smp_cpu_counts)
    smp_round_sizes
  @ [
      (fun () -> smp_slice_test ~cpus:1 1_000_000);
      (fun () -> smp_slice_test ~cpus:4 1_000_000);
    ]

(* Migration cost, measured under [minor_allocated] as well as the clock:
   one thread ping-ponged between two shards of a 10^4-thread sharded
   scheduler. force_migrate is the bench hook — O(1) detach, O(log n)
   re-insert, zero steady-state allocation (the smp/migration:minor-words
   budget pins it). The rebalancer is disabled so it does not fight the
   ping-pong. *)
let smp_migration_test () =
  let ls = smp_sched ~cpus:4 ~seed:23 in
  let s = Core.Lottery_sched.sched ls in
  let base = Core.Lottery_sched.base_currency ls in
  let threads = Array.init 10_000 bench_thread in
  Array.iter
    (fun th ->
      s.Core.Types.attach th;
      ignore (Core.Lottery_sched.fund_thread ls th ~amount:100 ~from:base))
    threads;
  (match s.Core.Types.select ~cpu:0 with
  | Some th -> s.Core.Types.account th ~used:100 ~quantum:100 ~blocked:false
  | None -> ());
  Core.Lottery_sched.set_migration_enabled ls false;
  let victim = threads.(0) in
  let flip = ref false in
  Test.make ~name:"migration"
    (Staged.stage (fun () ->
         let dst = if !flip then 0 else 1 in
         flip := not !flip;
         Core.Lottery_sched.force_migrate ls victim ~dst))

(* Steal latency: a lone thread pinned to shard 0 and a select on CPU 1 —
   the rebalancer refuses to move it (a lone thread always overshoots),
   so every select steals. Each operation is one steal + the
   force_migrate that resets the shape. *)
let smp_steal_test () =
  let ls = smp_sched ~cpus:2 ~seed:27 in
  Core.Lottery_sched.set_placement_hook ls (Some (fun _ -> 0));
  let s = Core.Lottery_sched.sched ls in
  let base = Core.Lottery_sched.base_currency ls in
  let th = bench_thread 0 in
  s.Core.Types.attach th;
  ignore (Core.Lottery_sched.fund_thread ls th ~amount:100 ~from:base);
  Test.make ~name:"steal"
    (Staged.stage (fun () ->
         match s.Core.Types.select ~cpu:1 with
         | Some th ->
             s.Core.Types.account th ~used:100 ~quantum:100 ~blocked:false;
             Core.Lottery_sched.force_migrate ls th ~dst:0
         | None -> ()))

let smp_alloc_tests () =
  Test.make_grouped ~name:"smp" [ smp_migration_test (); smp_steal_test () ]

(* Virtual-time throughput — the acceptance measure. Host wall-clock does
   not speed up when virtual CPUs are added (they all run on one host
   core); what sharding buys is virtual throughput: c CPUs serve c slices
   per quantum as long as every CPU finds work. Both kernels run the same
   horizon over 10^5 uniformly funded threads; the derived
   smp/sharded-4cpu-over-1cpu row is the per-slice virtual-cost ratio
   (1-CPU slices / 4-CPU slices): 0.250 when the 4-CPU kernel is
   work-conserving (aggregate slice throughput 4x the baseline),
   degrading toward 1.0 if placement or stealing regressions leave CPUs
   idle. Gated at 0.5 — at least 2x. *)
let smp_throughput_rows () =
  let slices ~cpus n =
    let ls = smp_sched ~cpus ~seed:29 in
    let k = Core.Kernel.create ~cpus ~sched:(Core.Lottery_sched.sched ls) () in
    let base = Core.Lottery_sched.base_currency ls in
    for i = 1 to n do
      let th =
        Core.Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
            while true do
              Core.Api.compute (Core.Time.ms 100)
            done)
      in
      ignore (Core.Lottery_sched.fund_thread ls th ~amount:100 ~from:base)
    done;
    let summary = Core.Kernel.run k ~until:(50 * Core.Time.ms 100) in
    float_of_int summary.Core.Types.slices
  in
  let quanta = 50. in
  let s1 = slices ~cpus:1 100_000 and s4 = slices ~cpus:4 100_000 in
  [
    ("smp/slices-per-quantum-1cpu", s1 /. quanta);
    ("smp/slices-per-quantum-4cpu", s4 /. quanta);
    ("smp/sharded-4cpu-over-1cpu", if s4 > 0. then s1 /. s4 else nan);
  ]

(* Per-shard fairness evidence for the snapshot: the smallest per-shard
   chi-square p of the sharded arm of the global-vs-sharded experiment,
   and a pass/fail indicator gated at 0 (fail when min p < 0.01). *)
let smp_fairness_rows () =
  let t = Lotto_exp.Smp_fairness.run ~duration:(Core.Time.seconds 60) () in
  let minp = Lotto_exp.Smp_fairness.min_shard_p t in
  [
    ("smp/per-shard-chisq-minp", minp);
    ("smp/per-shard-chisq-fail", if minp >= 0.01 then 0. else 1.);
  ]

(* --- service family: arrival generation + admission control ------------ *)

(* The per-request costs the service layer adds on top of the kernel: one
   interarrival draw per open-loop request (an exponential deviate for
   Poisson; deviates plus the state walk for MMPP) and one admission
   decision per send on a bounded port (an int compare against the queue
   length). Both run under the allocation measure as well as the clock —
   a service layer that allocated per arrival would own the minor heap at
   10^5 req/s horizons, so the budget pins the words at fit noise. *)
let service_arrival_test name profile =
  let rng = Core.Rng.create ~seed:41 () in
  let g = Core.Service.Arrivals.create ~rng profile in
  Test.make
    ~name:(Printf.sprintf "arrival-%s" name)
    (Staged.stage (fun () -> ignore (Core.Service.Arrivals.next_gap_us g)))

(* the admission decision on a saturated port: four clients parked in
   [rpc] fill a capacity-4 queue (no server ever receives), then every
   measured operation asks whether the next send would shed *)
let service_shed_test () =
  let rng = Core.Rng.create ~seed:43 () in
  let ls = Core.Lottery_sched.create ~rng () in
  let k = Core.Kernel.create ~sched:(Core.Lottery_sched.sched ls) () in
  let port =
    Core.Kernel.create_port ~capacity:4 ~shed:Core.Types.Reject_new k
      ~name:"svc"
  in
  for i = 1 to 4 do
    let c =
      Core.Kernel.spawn k ~name:(Printf.sprintf "c%d" i) (fun () ->
          ignore (Core.Api.rpc port "x"))
    in
    ignore
      (Core.Lottery_sched.fund_thread ls c ~amount:100
         ~from:(Core.Lottery_sched.base_currency ls))
  done;
  ignore (Core.Kernel.run k ~until:(Core.Time.ms 10));
  assert (Core.Kernel.port_would_shed port);
  Test.make ~name:"shed-decision"
    (Staged.stage (fun () -> ignore (Core.Kernel.port_would_shed port)))

let service_tests () =
  Test.make_grouped ~name:"service"
    [
      service_arrival_test "poisson" (Core.Service.Arrivals.Poisson 1000.);
      service_arrival_test "mmpp"
        (Core.Service.Arrivals.Mmpp
           {
             calm_per_s = 500.;
             burst_per_s = 2000.;
             calm_ms = 750.;
             burst_ms = 250.;
           });
      service_shed_test ();
    ]

(* PRNG draw cost (the paper's Appendix A argues ~10 RISC instructions) *)
let prng_test algo name =
  let rng = Core.Rng.create ~algo ~seed:3 () in
  Test.make
    ~name:(Printf.sprintf "prng/%s" name)
    (Staged.stage (fun () -> ignore (Core.Rng.int_below rng 1_000_000)))

let tests () =
  Test.make_grouped ~name:"lottery"
    (List.map list_draw_test draw_bench_sizes
    @ List.map sorted_list_draw_test draw_bench_sizes
    @ List.map tree_draw_test draw_bench_sizes
    @ List.map distributed_draw_test [ 64; 1024 ]
    @ List.concat_map
        (fun n ->
          [
            draw_backend_test Core.Draw.List "list" n;
            draw_backend_test Core.Draw.Tree "tree" n;
            draw_backend_test (Core.Draw.Distributed 16) "distributed16" n;
            draw_backend_test Core.Draw.Cumul "cumul" n;
            draw_backend_test Core.Draw.Alias "alias" n;
          ])
        draw_backend_sizes
    @ List.concat_map
        (fun n ->
          [
            resmgr_draw_test Core.Draw.List "list" n;
            resmgr_draw_test Core.Draw.Tree "tree" n;
          ])
        draw_backend_sizes
    @ [
        kernel_step_test "lottery-list" (lottery_sched_maker Core.Lottery_sched.List_mode) true;
        kernel_step_test "lottery-tree" (lottery_sched_maker Core.Lottery_sched.Tree_mode) true;
        kernel_step_test "stride" stride_maker true;
        kernel_step_test "round-robin" rr_maker false;
        kernel_step_test "decay-usage" decay_maker false;
        obs_none_test ();
        obs_recorder_test ();
        obs_metrics_test ();
        hook_absent_test ();
        hook_noop_test ();
        hook_injector_test ();
        valuation_chain_test 2;
        valuation_chain_test 16;
        valuation_wide_test 100;
      ]
    @ List.concat_map
        (fun n ->
          [
            churn_test Core.Lottery_sched.List_mode "list" ~full:false n;
            churn_test Core.Lottery_sched.Tree_mode "tree" ~full:false n;
            churn_test Core.Lottery_sched.List_mode "list" ~full:true n;
            churn_test Core.Lottery_sched.Tree_mode "tree" ~full:true n;
          ])
        churn_sizes
    @ [
        prng_test Core.Rng.Park_miller "park-miller";
        prng_test Core.Rng.Splitmix64 "splitmix64";
        prng_test Core.Rng.Xoshiro256pp "xoshiro256++";
      ])

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances (tests ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let count_substr hay needle =
  let nl = String.length needle in
  let n = String.length hay in
  let rec go i acc =
    if i + nl > n then acc
    else go (i + 1) (if String.sub hay i nl = needle then acc + 1 else acc)
  in
  if nl = 0 then 0 else go 0 0

let rows_of_measure results label suffix =
  match Hashtbl.find_opt results label with
  | None -> []
  | Some by_test ->
      Hashtbl.fold
        (fun name ols acc ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> est
            | _ -> nan
          in
          (name ^ suffix, est) :: acc)
        by_test []
      |> List.sort compare

let result_rows results =
  rows_of_measure results (Measure.label Instance.monotonic_clock) ""

(* the obs-overhead family runs under a second measure too: minor words per
   operation, the per-sample allocation the budget pins at zero. A derived
   row records the spans-on/off cost ratio of the RPC quantum. *)
let obs_benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances (obs_tests ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let obs_rows () =
  let results = obs_benchmark () in
  let time = result_rows results in
  let words =
    rows_of_measure results
      (Measure.label Instance.minor_allocated)
      ":minor-words"
  in
  let ratio =
    match
      ( List.assoc_opt "obs-overhead/spans" time,
        List.assoc_opt "obs-overhead/off" time )
    with
    | Some s, Some o when o > 0. -> [ ("obs-overhead/spans-over-off", s /. o) ]
    | _ -> []
  in
  time @ words @ ratio

(* the hot-path families run under the same two measures: the decision
   family is the allocation gate's subject (hotpath/*:minor-words rows),
   the batch and quiescent families provide the O(1)/amortization evidence
   as derived ratio rows. *)
let run_family ~alloc tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances =
    if alloc then Instance.[ monotonic_clock; minor_allocated ]
    else Instance.[ monotonic_clock ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let hotpath_rows () =
  let hres = run_family ~alloc:true (hotpath_tests ()) in
  let htime = result_rows hres in
  let hwords =
    rows_of_measure hres
      (Measure.label Instance.minor_allocated)
      ":minor-words"
  in
  let btime = result_rows (run_family ~alloc:false (batch_tests ())) in
  let qtime = result_rows (run_family ~alloc:false (flat_tests ())) in
  let ratio rows num den label =
    match (List.assoc_opt num rows, List.assoc_opt den rows) with
    | Some a, Some b when b > 0. -> [ (label, a /. b) ]
    | _ -> []
  in
  let growth m =
    ratio qtime
      (Printf.sprintf "draw-quiescent/%s/1000000" m)
      (Printf.sprintf "draw-quiescent/%s/0000100" m)
      (Printf.sprintf "draw-quiescent/%s-1e6-over-1e2" m)
  in
  let vs_tree m n tag =
    ratio qtime
      (Printf.sprintf "draw-quiescent/%s/%07d" m n)
      (Printf.sprintf "draw-quiescent/tree/%07d" n)
      (Printf.sprintf "draw-quiescent/%s-over-tree-%s" m tag)
  in
  let dtime = result_rows (run_family ~alloc:false (disk_batch_tests ())) in
  htime @ hwords @ btime @ qtime @ dtime
  @ ratio btime
      (Printf.sprintf "batch-draw/draw_k-%d" batch_k)
      (Printf.sprintf "batch-draw/singles-%d" batch_k)
      "batch-draw/draw_k-over-singles"
  @ ratio dtime "disk-batch/epoch-batched" "disk-batch/epoch-singles"
      "disk-batch/epoch-batched-over-singles"
  @ growth "tree" @ growth "cumul" @ growth "alias"
  @ vs_tree "cumul" 10_000 "1e4"
  @ vs_tree "alias" 10_000 "1e4"
  @ vs_tree "cumul" 1_000_000 "1e6"
  @ vs_tree "alias" 1_000_000 "1e6"

(* the service family runs under both measures: wall-ns per arrival draw
   and per admission decision, plus the service/*:minor-words rows the
   budget gates *)
let service_rows () =
  let res = run_family ~alloc:true (service_tests ()) in
  result_rows res
  @ rows_of_measure res (Measure.label Instance.minor_allocated) ":minor-words"

(* the smp family: wall-ns rows for rounds/slices across CPU counts, the
   migration/steal rows under the allocation measure, then the computed
   virtual-throughput and per-shard fairness rows the acceptance gate
   reads *)
let smp_rows () =
  let time =
    List.concat_map
      (fun mk ->
        result_rows
          (run_family ~alloc:false (Test.make_grouped ~name:"smp" [ mk () ])))
      (smp_time_thunks ())
  in
  let ares = run_family ~alloc:true (smp_alloc_tests ()) in
  let atime = result_rows ares in
  let awords =
    rows_of_measure ares
      (Measure.label Instance.minor_allocated)
      ":minor-words"
  in
  (* host-side per-slice cost ratio, for the record: a 4-CPU round serves
     4 slices, so round4 / (4 * round1) ~ 1 means sharding costs nothing
     per slice in host time (the win is virtual, gated below) *)
  let host_ratio =
    match
      ( List.assoc_opt "smp/round-4cpu/0100000" time,
        List.assoc_opt "smp/round-1cpu/0100000" time )
    with
    | Some r4, Some r1 when r1 > 0. ->
        [ ("smp/host-slice-4cpu-over-1cpu", r4 /. (4. *. r1)) ]
    | _ -> []
  in
  time @ atime @ awords @ host_ratio @ smp_throughput_rows ()
  @ smp_fairness_rows ()

(* the arena scale family runs under the same OLS fit; derived rows record
   how the full slice (valuation refresh + draw + dispatch bookkeeping)
   grows as the thread table scales 10x and 100x — the polylog claim in
   one number each. *)
let scale_benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances (scale_tests ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let scale_rows () =
  let time = result_rows (scale_benchmark ()) in
  let ratio num den label =
    match (List.assoc_opt num time, List.assoc_opt den time) with
    | Some a, Some b when b > 0. -> [ (label, a /. b) ]
    | _ -> []
  in
  time
  @ ratio "scale-arena/slice-tree/0100000" "scale-arena/slice-tree/0010000"
      "scale-arena/slice-1e5-over-1e4"
  @ ratio "scale-arena/slice-tree/1000000" "scale-arena/slice-tree/0010000"
      "scale-arena/slice-1e6-over-1e4"
  @ ratio "scale-arena/kernel-quantum-tree/0100000"
      "scale-arena/kernel-quantum-tree/0010000"
      "scale-arena/quantum-1e5-over-1e4"

(* --- the overhead gate -------------------------------------------------- *)

(* budget file: one "name max" pair per line, [#] comments. CI fails when
   any measured obs-overhead row exceeds its recorded budget. *)
let read_budget path =
  let ic = open_in path in
  let rec go n acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line -> (
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (n + 1) acc
        else
          match
            String.split_on_char ' ' trimmed |> List.filter (( <> ) "")
          with
          | [ name; v ] -> (
              match float_of_string_opt v with
              | Some f -> go (n + 1) ((name, f) :: acc)
              | None ->
                  failwith
                    (Printf.sprintf "%s:%d: bad budget value %S" path n v))
          | _ -> failwith (Printf.sprintf "%s:%d: bad budget line %S" path n line))
  in
  go 1 []

let gate ~budget_path rows =
  let budget = read_budget budget_path in
  print_endline "";
  print_endline "=================================================================";
  Printf.printf " Observability overhead gate (%s)\n" budget_path;
  print_endline "=================================================================";
  let failures =
    List.filter_map
      (fun (name, max_v) ->
        let show v note =
          Printf.printf "  %-44s %12s (budget %10.3f)\n" name v note
        in
        match List.assoc_opt name rows with
        | None ->
            show "missing" max_v;
            Some (Printf.sprintf "%s: budgeted but not measured" name)
        | Some v when Float.is_nan v ->
            show "no fit" max_v;
            Some (Printf.sprintf "%s: benchmark produced no OLS fit" name)
        | Some v ->
            show (Printf.sprintf "%.3f" v) max_v;
            if v > max_v then
              Some
                (Printf.sprintf "%s: measured %.3f exceeds budget %.3f" name v
                   max_v)
            else None)
      budget
  in
  if failures <> [] then begin
    List.iter (fun f -> Printf.printf "GATE FAIL: %s\n" f) failures;
    exit 1
  end
  else print_endline "gate passed"

let print_results rows =
  print_endline "";
  print_endline "=================================================================";
  print_endline " Microbenchmarks (ns per operation, OLS fit)";
  print_endline "=================================================================";
  if rows = [] then print_endline "no results"
  else
    List.iter
      (fun (name, v) ->
        (* derived rows carry their own units: words/op for :minor-words,
           a dimensionless ratio for -over- *)
        let unit =
          if count_substr name ":minor-words" > 0 then "w/op"
          else if count_substr name "-over-" > 0 then "x"
          else if count_substr name "slices-per-quantum" > 0 then "sl/q"
          else if count_substr name "chisq" > 0 then "p"
          else "ns"
        in
        Printf.printf "  %-40s %12.1f %s\n" name v unit)
      rows

(* machine-readable sink for figure pipelines: one CSV row per benchmark *)
let write_metrics_csv path rows =
  let oc = open_out path in
  output_string oc "benchmark,ns_per_op\n";
  List.iter (fun (name, ns) -> Printf.fprintf oc "%s,%.3f\n" name ns) rows;
  close_out oc;
  Printf.printf "\nwrote %d benchmark rows to %s\n" (List.length rows) path

(* JSON sink for CI artifacts and cross-revision comparison; NaN fits (a
   benchmark whose OLS fit failed) are emitted as null *)
let write_metrics_json path rows =
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (name, ns) ->
      let v =
        if Float.is_nan ns then "null" else Printf.sprintf "%.3f" ns
      in
      Printf.fprintf oc "  { \"benchmark\": %S, \"ns_per_op\": %s }%s\n" name v
        (if i < last then "," else ""))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "\nwrote %d benchmark rows to %s\n" (List.length rows) path

let () =
  let run_figures = ref true in
  let run_bench = ref true in
  let run_par = ref false in
  let run_obs = ref false in
  let run_service = ref false in
  let run_smp = ref false in
  let run_scale = ref false in
  let run_smoke = ref false in
  let gate_budget = ref "" in
  let metrics_csv = ref "" in
  let metrics_json = ref "" in
  let spec =
    [
      ("--figures-only", Arg.Unit (fun () -> run_bench := false),
       " regenerate the paper figures/tables and skip microbenchmarks");
      ("--bench-only", Arg.Unit (fun () -> run_figures := false),
       " run only the Bechamel microbenchmarks (includes obs-overhead/*)");
      ( "--par-only",
        Arg.Unit
          (fun () ->
            run_figures := false;
            run_bench := false;
            run_par := true),
        " run only the domain-parallel wall-clock family (par/figset-N)" );
      ( "--obs-only",
        Arg.Unit
          (fun () ->
            run_figures := false;
            run_bench := false;
            run_obs := true),
        " run only the overhead families (obs-overhead/*, hotpath/*, \
         batch-draw/*, draw-quiescent/*)" );
      ( "--service-only",
        Arg.Unit
          (fun () ->
            run_figures := false;
            run_bench := false;
            run_service := true),
        " run only the service family (service/arrival-*, \
         service/shed-decision, with :minor-words rows)" );
      ( "--smp-only",
        Arg.Unit
          (fun () ->
            run_figures := false;
            run_bench := false;
            run_smp := true),
        " run only the multi-CPU family (smp/round-*, smp/slice-*, \
         smp/migration, smp/steal, virtual-throughput and per-shard \
         fairness rows)" );
      ( "--scale-only",
        Arg.Unit
          (fun () ->
            run_figures := false;
            run_bench := false;
            run_scale := true),
        " run only the arena scale family (scale-arena/* at 10^4..10^6)" );
      ( "--scale-smoke",
        Arg.Unit (fun () -> run_smoke := true),
        " run the 10^5-thread kernel smoke (churn + audit) and exit" );
      ( "--gate",
        Arg.Set_string gate_budget,
        "FILE check obs-overhead results against the recorded budgets \
         (exit 1 on regression)" );
      ("--metrics-csv", Arg.Set_string metrics_csv,
       "FILE also write microbenchmark results as CSV (benchmark,ns_per_op)");
      ("--json", Arg.Set_string metrics_json,
       "FILE also write microbenchmark results as a JSON array");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "bench [--figures-only | --bench-only | --par-only | --obs-only | \
     --service-only | --smp-only | --scale-only | --scale-smoke] \
     [--gate FILE] [--metrics-csv FILE] [--json FILE]";
  if !run_smoke then begin
    scale_smoke ();
    exit 0
  end;
  if !run_figures then figures ();
  let want_obs = !run_bench || !run_obs || !gate_budget <> "" in
  let want_service = !run_bench || !run_service || !gate_budget <> "" in
  let want_smp = !run_bench || !run_smp || !gate_budget <> "" in
  if !run_bench || !run_par || !run_scale || want_obs || want_service || want_smp
  then begin
    let rows =
      (if !run_bench then result_rows (benchmark ()) else [])
      @ (if want_obs then obs_rows () @ hotpath_rows () else [])
      @ (if want_service then service_rows () else [])
      @ (if want_smp then smp_rows () else [])
      @ (if !run_scale then scale_rows () else [])
      @ (if !run_par then par_rows () else [])
    in
    if !run_bench || !run_obs || !run_service || !run_smp || !run_scale then
      print_results rows;
    if !metrics_csv <> "" then write_metrics_csv !metrics_csv rows;
    if !metrics_json <> "" then write_metrics_json !metrics_json rows;
    if !gate_budget <> "" then gate ~budget_path:!gate_budget rows
  end
