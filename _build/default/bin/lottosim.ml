(* Scenario-driven lottery-scheduling simulator: describe currencies,
   threads and a horizon in a small text file; get CPU shares and an
   execution timeline.

     dune exec bin/lottosim.exe -- scenario.txt

   Example scenario:

     currency alice 1000 base
     currency bob 1000 base
     thread a1 spin 1ms 100 alice
     thread a2 spin 1ms 200 alice
     thread b1 spin 1ms 300 bob
     thread ivy interactive 20ms 80ms 50 base
     run 60s
*)

open Cmdliner

let run path =
  match Lotto_ctl.Scenario.parse_file path with
  | Error m -> `Error (false, m)
  | Ok scenario ->
      let report = Lotto_ctl.Scenario.run scenario in
      Printf.printf "after %s of virtual time:\n\n"
        (Format.asprintf "%a" Lotto_sim.Time.pp report.horizon);
      Printf.printf "  %-14s %12s %8s\n" "thread" "cpu (ticks)" "share";
      List.iter
        (fun (name, cpu, share) ->
          Printf.printf "  %-14s %12d %7.1f%%\n" name cpu (100. *. share))
        report.rows;
      print_newline ();
      print_string report.timeline;
      `Ok ()

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SCENARIO" ~doc:"Scenario file.")

let cmd =
  let doc = "run a lottery-scheduling scenario file" in
  Cmd.v (Cmd.info "lottosim" ~doc) Term.(ret (const run $ path_arg))

let () = exit (Cmd.eval cmd)
