bin/experiments.mli:
