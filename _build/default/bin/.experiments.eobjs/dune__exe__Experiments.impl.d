bin/experiments.ml: Arg Cmd Cmdliner Filename List Lotto_exp Printf Sys Term
