bin/lottosim.ml: Arg Cmd Cmdliner Format List Lotto_ctl Lotto_sim Printf Term
