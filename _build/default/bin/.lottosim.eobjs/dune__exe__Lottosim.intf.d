bin/lottosim.mli:
