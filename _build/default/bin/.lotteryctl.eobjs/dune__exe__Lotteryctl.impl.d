bin/lotteryctl.ml: Arg Cmd Cmdliner Lotto_ctl Term
