bin/lotteryctl.mli:
