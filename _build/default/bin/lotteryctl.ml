(* Command-line interface to a persistent currency/ticket store — the
   paper's §4.7 user commands over a state file. Examples:

     lotteryctl -s funding.lot mkcur alice
     lotteryctl -s funding.lot mktkt 200 base
     lotteryctl -s funding.lot fund t1 alice
     lotteryctl -s funding.lot mktkt 100 alice
     lotteryctl -s funding.lot hold t2
     lotteryctl -s funding.lot eval
     lotteryctl -s funding.lot simulate 60
*)

open Cmdliner

let run state_file user words =
  match Lotto_ctl.Store.parse_command words with
  | Error m -> `Error (false, m)
  | Ok cmd -> (
      match Lotto_ctl.Store.load_file state_file with
      | Error m -> `Error (false, "corrupt state file: " ^ m)
      | Ok store -> (
          match Lotto_ctl.Store.exec ~user store cmd with
          | Error m -> `Error (false, m)
          | Ok output ->
              print_endline output;
              (match Lotto_ctl.Store.save_file store state_file with
              | Ok () -> `Ok ()
              | Error m -> `Error (false, "cannot save state: " ^ m))))

let state_arg =
  Arg.(
    value
    & opt string "funding.lot"
    & info [ "s"; "state" ] ~docv:"FILE" ~doc:"State file holding the funding graph.")

let user_arg =
  Arg.(
    value & opt string "root"
    & info [ "u"; "user" ] ~docv:"PRINCIPAL"
        ~doc:"Principal executing the command (currency permissions apply).")

let words_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"COMMAND"
        ~doc:
          "mkcur/rmcur NAME | mktkt AMOUNT DENOM | rmtkt/fund/unfund/hold/release \
           TICKET [CURRENCY] | chown CUR OWNER | grant/ungrant CUR WHO \
           issue|fund|manage | lscur | lstkt | eval | dot | draw N [SEED] | \
           simulate SECONDS [SEED]")

let cmd =
  let doc = "manipulate lottery-scheduling currencies and tickets (paper sec. 4.7)" in
  Cmd.v
    (Cmd.info "lotteryctl" ~doc)
    Term.(ret (const run $ state_arg $ user_arg $ words_arg))

let () = exit (Cmd.eval cmd)
