(* Currencies as modular abstraction barriers (paper §3.3, §5.5, Figure 3).

   Reconstructs the paper's Figure 3 graph — alice funded with 1000.base,
   bob with 2000.base, tasks funded in user currencies, threads holding
   task tickets, task1 inactive — and checks the published base values
   (thread2 = 400, thread3 = 600, thread4 = 2000). Then shows load
   insulation in a live kernel: bob triples his internal ticket issue and
   alice's threads are unaffected.

   Run with: dune exec examples/currencies.exe *)

open Core

let () =
  (* ---- Figure 3 valuation, standalone funding graph ---- *)
  let sys = Funding.create_system () in
  let base = Funding.base sys in
  let currency name ~from ~amount =
    let c = Funding.make_currency sys ~name in
    let t = Funding.issue sys ~currency:from ~amount in
    Funding.fund sys ~ticket:t ~currency:c;
    c
  in
  let alice = currency "alice" ~from:base ~amount:1000 in
  let bob = currency "bob" ~from:base ~amount:2000 in
  let task1 = currency "task1" ~from:alice ~amount:100 in
  let task2 = currency "task2" ~from:alice ~amount:200 in
  let task3 = currency "task3" ~from:bob ~amount:100 in
  let hold c amount =
    let t = Funding.issue sys ~currency:c ~amount in
    Funding.hold sys t;
    t
  in
  (* thread1 exists but is not runnable: task1 stays inactive, so its
     100.alice backing ticket does not dilute alice *)
  let thread1 = Funding.issue sys ~currency:task1 ~amount:100 in
  ignore thread1;
  let thread2 = hold task2 200 in
  let thread3 = hold task2 300 in
  let thread4 = hold task3 100 in
  Printf.printf "Figure 3 values (base units): thread2=%.0f thread3=%.0f thread4=%.0f\n"
    (Funding.ticket_value sys thread2)
    (Funding.ticket_value sys thread3)
    (Funding.ticket_value sys thread4);
  Printf.printf "  (paper: thread2 = 400, thread3 = 600, thread4 = 2000)\n";

  (* ---- load insulation in a live kernel ---- *)
  let rng = Rng.create ~seed:5 () in
  let ls = Lottery_sched.create ~rng () in
  let kernel = Kernel.create ~sched:(Lottery_sched.sched ls) () in
  let cur_a = Lottery_sched.make_currency ls "alice" in
  let cur_b = Lottery_sched.make_currency ls "bob" in
  ignore (Lottery_sched.fund_currency ls ~target:cur_a ~amount:500 ~from:(Lottery_sched.base_currency ls));
  ignore (Lottery_sched.fund_currency ls ~target:cur_b ~amount:500 ~from:(Lottery_sched.base_currency ls));
  let spin name cur amount =
    let s = Spinner.spawn kernel ~name () in
    ignore (Lottery_sched.fund_thread ls (Spinner.thread s) ~amount ~from:cur);
    s
  in
  let a1 = spin "alice1" cur_a 100 in
  let b1 = spin "bob1" cur_b 100 in
  ignore (Kernel.run kernel ~until:(Time.seconds 60));
  let a_before = Spinner.iterations a1 and b_before = Spinner.iterations b1 in
  (* bob floods his own currency with new tickets: a second thread holding
     200.bob — inflation contained inside bob *)
  let _b2 = spin "bob2" cur_b 200 in
  ignore (Kernel.run kernel ~until:(Time.seconds 120));
  let rate lo hi s = float_of_int (Spinner.iterations_between s ~lo ~hi) /. 60. in
  Printf.printf "\nalice1: %.0f then %.0f iter/s (insulated from bob's inflation)\n"
    (float_of_int a_before /. 60.)
    (rate (Time.seconds 60) (Time.seconds 120) a1);
  Printf.printf "bob1:   %.0f then %.0f iter/s (diluted 3x inside currency bob)\n"
    (float_of_int b_before /. 60.)
    (rate (Time.seconds 60) (Time.seconds 120) b1)
