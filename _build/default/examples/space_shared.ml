(* Space-shared and queued resources beyond the CPU (paper §6, §6.2):
   inverse-lottery memory revocation, lottery I/O bandwidth, and the
   lottery disk-head scheduler, side by side.

   Run with: dune exec examples/space_shared.exe *)

open Core

let () =
  (* --- memory: the inverse lottery picks victims among page holders --- *)
  let rng = Rng.create ~algo:Splitmix64 ~seed:1 () in
  let pool = Inverse_memory.create ~frames:120 ~rng () in
  let clients =
    List.map
      (fun (name, tickets) ->
        (name, Inverse_memory.add_client pool ~name ~tickets ~working_set:160))
      [ ("gold", 900); ("silver", 250); ("bronze", 50) ]
  in
  Inverse_memory.simulate pool ~steps:120_000;
  Printf.printf "inverse-lottery memory (120 frames, 18:5:1 tickets):\n";
  List.iter
    (fun (name, c) ->
      Printf.printf "  %-7s resident %3d pages, %5d faults\n" name
        (Inverse_memory.resident pool c)
        (Inverse_memory.faults pool c))
    clients;

  (* --- I/O bandwidth: per-slot lotteries over backlogged streams --- *)
  let dev = Io_bandwidth.create ~rng:(Rng.create ~seed:2 ()) () in
  let streams =
    List.map
      (fun (name, tickets) ->
        let c = Io_bandwidth.add_client dev ~name ~tickets in
        Io_bandwidth.submit dev c ~requests:50_000;
        (name, c))
      [ ("video", 300); ("backup", 200); ("log", 100) ]
  in
  Io_bandwidth.serve dev ~slots:30_000;
  Printf.printf "\nlottery I/O bandwidth (3:2:1 streams, 30k slots):\n";
  List.iter
    (fun (name, c) ->
      Printf.printf "  %-7s served %5d slots (%.1f%%)\n" name
        (Io_bandwidth.served dev c)
        (100. *. float_of_int (Io_bandwidth.served dev c) /. 30_000.))
    streams;

  (* --- disk head: tickets versus seek optimization --- *)
  Printf.printf "\ndisk-head policies (3:1 clients, random cylinders):\n";
  List.iter
    (fun policy ->
      let disk = Disk.create ~policy ~rng:(Rng.create ~seed:3 ()) () in
      let wl = Rng.create ~algo:Splitmix64 ~seed:4 () in
      let rich = Disk.add_client disk ~name:"rich" ~tickets:300 in
      let poor = Disk.add_client disk ~name:"poor" ~tickets:100 in
      for _ = 1 to 4_000 do
        List.iter
          (fun c ->
            if Disk.pending disk c < 8 then
              Disk.submit disk c ~cylinder:(Rng.int_below wl 1000))
          [ rich; poor ];
        ignore (Disk.serve_one disk)
      done;
      Printf.printf "  %-8s rich %4d : poor %4d served, %7d cylinders seeked\n"
        (match policy with
        | Disk.Lottery -> "lottery"
        | Disk.Fcfs -> "fcfs"
        | Disk.Sstf -> "sstf")
        (Disk.served disk rich) (Disk.served disk poor)
        (Disk.total_seek_distance disk))
    [ Disk.Lottery; Disk.Fcfs; Disk.Sstf ]
