(* Controlling media rates at the OS level (paper §5.4): three viewers of
   the same video get a 3:2:1 split, retargeted to 3:1:2 mid-run by simple
   ticket inflation — no cooperation from the viewers required.

   Run with: dune exec examples/video_rates.exe *)

open Core

let () =
  let rng = Rng.create ~seed:8 () in
  let ls = Lottery_sched.create ~rng () in
  let kernel = Kernel.create ~sched:(Lottery_sched.sched ls) () in
  let base = Lottery_sched.base_currency ls in
  let viewer name = Video.spawn_viewer kernel ~name ~frame_cost:(Time.ms 100) () in
  let a = viewer "A" and b = viewer "B" and c = viewer "C" in
  let _ta = Lottery_sched.fund_thread ls (Video.thread a) ~amount:300 ~from:base in
  let tb = Lottery_sched.fund_thread ls (Video.thread b) ~amount:200 ~from:base in
  let tc = Lottery_sched.fund_thread ls (Video.thread c) ~amount:100 ~from:base in
  let report lo hi =
    List.iter
      (fun v ->
        Printf.printf "  %s: %.2f fps"
          (Kernel.thread_name (Video.thread v))
          (Video.fps v ~lo ~hi))
      [ a; b; c ];
    print_newline ()
  in
  ignore (Kernel.run kernel ~until:(Time.seconds 60));
  Printf.printf "first minute (3:2:1):\n";
  report 0 (Time.seconds 60);
  (* the user drags a slider: B down, C up *)
  Lottery_sched.set_ticket_amount ls tb 100;
  Lottery_sched.set_ticket_amount ls tc 200;
  ignore (Kernel.run kernel ~until:(Time.seconds 120));
  Printf.printf "second minute (3:1:2):\n";
  report (Time.seconds 60) (Time.seconds 120)
