(* A staged pipeline mixing every synchronization primitive: a producer
   fills a bounded buffer guarded by a mutex + condition variables, workers
   drain it into per-item RPCs against a ticketless backend (funded purely
   by ticket transfers), and a semaphore throttles concurrent backend
   calls. An execution timeline shows where the CPU went.

   Run with: dune exec examples/pipeline.exe *)

open Core

let () =
  let rng = Rng.create ~seed:2024 () in
  let ls = Lottery_sched.create ~rng () in
  let kernel = Kernel.create ~sched:(Lottery_sched.sched ls) () in
  let base = Lottery_sched.base_currency ls in
  let timeline = Timeline.attach kernel ~bucket:(Time.seconds 1) () in

  (* bounded buffer: mutex + not_empty/not_full conditions *)
  let m = Kernel.create_mutex kernel "buffer" in
  let not_empty = Kernel.create_condition kernel "not-empty" in
  let not_full = Kernel.create_condition kernel "not-full" in
  let buffer = Queue.create () in
  let capacity = 8 in

  (* backend: no tickets of its own, runs on transfers *)
  let port = Kernel.create_port kernel ~name:"backend" in
  for i = 1 to 2 do
    ignore
      (Kernel.spawn kernel ~name:(Printf.sprintf "backend%d" i) (fun () ->
           while true do
             let msg = Api.receive port in
             Api.compute (Time.ms 40);
             Api.reply msg (msg.payload ^ "!")
           done))
  done;

  (* at most 3 in-flight backend calls *)
  let throttle = Kernel.create_semaphore kernel ~initial:3 "throttle" in

  let produced = ref 0 and consumed = ref 0 in
  let producer =
    Kernel.spawn kernel ~name:"producer" (fun () ->
        for i = 1 to 200 do
          Api.compute (Time.ms 10);
          Api.lock m;
          while Queue.length buffer >= capacity do
            Api.wait not_full m
          done;
          Queue.push (Printf.sprintf "item%d" i) buffer;
          incr produced;
          Api.signal not_empty;
          Api.unlock m
        done)
  in
  let workers =
    List.init 3 (fun i ->
        Kernel.spawn kernel
          ~name:(Printf.sprintf "worker%d" (i + 1))
          (fun () ->
            while true do
              Api.lock m;
              while Queue.is_empty buffer do
                Api.wait not_empty m
              done;
              let item = Queue.pop buffer in
              Api.signal not_full;
              Api.unlock m;
              Api.compute (Time.ms 15);
              Api.sem_wait throttle;
              let reply = Api.rpc port item in
              Api.sem_post throttle;
              ignore reply;
              incr consumed
            done))
  in
  ignore (Lottery_sched.fund_thread ls producer ~amount:200 ~from:base);
  List.iteri
    (fun i w ->
      ignore (Lottery_sched.fund_thread ls w ~amount:(100 * (i + 1)) ~from:base))
    workers;
  ignore (Kernel.run kernel ~until:(Time.seconds 20));
  Timeline.detach timeline;
  Printf.printf "produced %d, consumed %d (buffer %d, in flight bounded by 3)\n\n"
    !produced !consumed (Queue.length buffer);
  print_string (Timeline.render ~width:60 timeline);
  Printf.printf "\nworkers funded 100/200/300 pull items at matching rates;\n";
  Printf.printf "the ticketless backends run on rights transferred per call.\n"
