(* Dynamic ticket inflation (paper §5.2): three Monte-Carlo integrations
   start 60 s apart, each funding itself proportionally to the square of
   its current relative error. Watch the later tasks catch up.

   Run with: dune exec examples/monte_carlo.exe *)

open Core

let () =
  let rng = Rng.create ~seed:7 () in
  let ls = Lottery_sched.create ~rng () in
  let kernel = Kernel.create ~sched:(Lottery_sched.sched ls) () in
  let mc_currency = Lottery_sched.make_currency ls "monte-carlo" in
  ignore
    (Lottery_sched.fund_currency ls ~target:mc_currency ~amount:1000
       ~from:(Lottery_sched.base_currency ls));
  let seeds = Rng.create ~algo:Splitmix64 ~seed:99 () in
  let tasks =
    List.map
      (fun i ->
        Monte_carlo.spawn kernel ls
          ~name:(Printf.sprintf "mc%d" i)
          ~rng:(Rng.split seeds) ~from:mc_currency
          ~start_at:(Time.seconds (60 * (i - 1)))
          ())
      [ 1; 2; 3 ]
  in
  (* Sample progress every virtual minute. *)
  for minute = 1 to 5 do
    ignore (Kernel.run kernel ~until:(Time.seconds (60 * minute)));
    Printf.printf "t=%3dmin " minute;
    List.iter
      (fun t ->
        Printf.printf " %s: %8d trials (ticket %d)"
          (Kernel.thread_name (Monte_carlo.thread t))
          (Monte_carlo.trials t) (Monte_carlo.current_ticket t))
      tasks;
    print_newline ()
  done;
  List.iter
    (fun t ->
      Printf.printf "%s: estimate of pi/4 = %.6f (error %.1e)\n"
        (Kernel.thread_name (Monte_carlo.thread t))
        (Monte_carlo.estimate t) (Monte_carlo.relative_error t))
    tasks
