examples/quickstart.mli:
