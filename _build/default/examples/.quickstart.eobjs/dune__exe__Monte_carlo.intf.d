examples/monte_carlo.mli:
