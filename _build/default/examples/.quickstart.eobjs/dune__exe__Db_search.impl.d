examples/db_search.ml: Core Corpus Db Kernel List Lottery_sched Printf Rng Time
