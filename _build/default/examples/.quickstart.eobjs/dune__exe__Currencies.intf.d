examples/currencies.mli:
