examples/monte_carlo.ml: Core Kernel List Lottery_sched Monte_carlo Printf Rng Time
