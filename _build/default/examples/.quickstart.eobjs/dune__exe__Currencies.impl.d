examples/currencies.ml: Core Funding Kernel Lottery_sched Printf Rng Spinner Time
