examples/quickstart.ml: Api Core Kernel List List_lottery Lottery_sched Printf Rng Time
