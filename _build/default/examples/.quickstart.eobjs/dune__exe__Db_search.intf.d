examples/db_search.mli:
