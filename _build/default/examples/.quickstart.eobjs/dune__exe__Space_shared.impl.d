examples/space_shared.ml: Core Disk Inverse_memory Io_bandwidth List Printf Rng
