examples/pipeline.ml: Api Core Kernel List Lottery_sched Printf Queue Rng Time Timeline
