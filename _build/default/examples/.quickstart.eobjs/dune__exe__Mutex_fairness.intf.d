examples/mutex_fairness.mli:
