examples/space_shared.mli:
