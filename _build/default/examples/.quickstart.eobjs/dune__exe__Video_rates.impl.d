examples/video_rates.ml: Core Kernel List Lottery_sched Printf Rng Time Video
