examples/mutex_fairness.ml: Array Core Descriptive Kernel List Lottery_sched Mutex_workload Printf Rng Time Types
