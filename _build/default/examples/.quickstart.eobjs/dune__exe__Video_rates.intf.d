examples/video_rates.mli:
