examples/pipeline.mli:
