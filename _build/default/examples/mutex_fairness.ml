(* Lottery-scheduled locks (paper §6.1): waiting times and acquisition
   rates of a contended mutex track ticket allocations; a FIFO mutex
   ignores them.

   Run with: dune exec examples/mutex_fairness.exe *)

open Core

let run policy =
  let rng = Rng.create ~seed:11 () in
  let ls = Lottery_sched.create ~rng () in
  let kernel = Kernel.create ~sched:(Lottery_sched.sched ls) () in
  let mutex = Kernel.create_mutex kernel ~policy "shared" in
  let contender name tickets =
    let c = Mutex_workload.spawn_contender kernel ~mutex ~name () in
    ignore
      (Lottery_sched.fund_thread ls (Mutex_workload.thread c) ~amount:tickets
         ~from:(Lottery_sched.base_currency ls));
    c
  in
  let rich = List.init 3 (fun i -> contender (Printf.sprintf "rich%d" i) 200) in
  let poor = List.init 3 (fun i -> contender (Printf.sprintf "poor%d" i) 100) in
  ignore (Kernel.run kernel ~until:(Time.seconds 60));
  let acq group = List.fold_left (fun acc c -> acc + Mutex_workload.acquisitions c) 0 group in
  let wait group =
    let xs = List.concat_map (fun c -> Array.to_list (Mutex_workload.waiting_times c)) group in
    Descriptive.mean_list xs
  in
  Printf.printf "%-14s rich: %4d acquisitions, %.3fs mean wait | poor: %4d, %.3fs\n"
    (match policy with Types.Lottery_wake -> "lottery mutex" | Types.Fifo -> "fifo mutex")
    (acq rich) (wait rich) (acq poor) (wait poor)

let () =
  run Types.Lottery_wake;
  run Types.Fifo
