(* Client-server resource management via ticket transfers (paper §5.3).

   A text-search server owns no tickets at all; two clients with a 3:1
   allocation fund it implicitly through synchronous RPC transfers, so the
   server processes their queries at a 3:1 rate without knowing anything
   about either client.

   Run with: dune exec examples/db_search.exe *)

open Core

let () =
  let rng = Rng.create ~seed:3 () in
  let ls = Lottery_sched.create ~rng () in
  let kernel = Kernel.create ~sched:(Lottery_sched.sched ls) () in
  let corpus = Corpus.generate ~size_bytes:(64 * 1024) ~needle:"lottery" ~occurrences:8 () in
  let server =
    Db.start_server kernel ~name:"shakespeare" ~workers:2
      ~query_cost:(Time.seconds 1) ~corpus ()
  in
  let client name tickets =
    let c =
      (* start 1 ms in so the unfunded server workers can park in receive *)
      Db.spawn_client kernel server ~name ~query:"lottery" ~start_at:(Time.ms 1) ()
    in
    ignore
      (Lottery_sched.fund_thread ls (Db.thread c) ~amount:tickets
         ~from:(Lottery_sched.base_currency ls));
    c
  in
  let fast = client "fast" 300 in
  let slow = client "slow" 100 in
  ignore (Kernel.run kernel ~until:(Time.seconds 120));
  Printf.printf "corpus contains \"lottery\" %d times\n"
    (Corpus.count_substring ~haystack:corpus ~needle:"lottery");
  List.iter
    (fun c ->
      Printf.printf "%-5s: %3d queries, mean response %.2fs, last result %s\n"
        (Kernel.thread_name (Db.thread c))
        (Db.completions c) (Db.mean_response_time c)
        (match Db.last_result c with Some n -> string_of_int n | None -> "-"))
    [ fast; slow ];
  Printf.printf "throughput ratio %.2f : 1 (allocated 3 : 1)\n"
    (float_of_int (Db.completions fast) /. float_of_int (Db.completions slow))
