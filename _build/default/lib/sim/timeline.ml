type t = {
  kernel : Kernel.t;
  bucket : int;
  (* thread name -> (bucket index -> ticks) *)
  rows : (string, (int, int) Hashtbl.t) Hashtbl.t;
  mutable last_select : (string * int) option; (* name, time *)
  mutable first_time : int;
  mutable last_time : int;
}

(* The kernel traces "select <name>" at each decision; charge the interval
   between consecutive selects to the earlier thread. *)
let on_event t time line =
  (match t.last_select with
  | Some (name, started) when time > started ->
      let row =
        match Hashtbl.find_opt t.rows name with
        | Some r -> r
        | None ->
            let r = Hashtbl.create 32 in
            Hashtbl.replace t.rows name r;
            r
      in
      (* spread [started, time) across buckets *)
      let rec charge from remaining =
        if remaining > 0 then begin
          let b = from / t.bucket in
          let bucket_end = (b + 1) * t.bucket in
          let chunk = min remaining (bucket_end - from) in
          Hashtbl.replace row b
            (chunk + Option.value ~default:0 (Hashtbl.find_opt row b));
          charge (from + chunk) (remaining - chunk)
        end
      in
      charge started (time - started)
  | _ -> ());
  if t.first_time < 0 then t.first_time <- time;
  t.last_time <- max t.last_time time;
  match String.index_opt line ' ' with
  | Some i when String.sub line 0 i = "select" ->
      t.last_select <- Some (String.sub line (i + 1) (String.length line - i - 1), time)
  | _ -> ()

let[@warning "-16"] attach kernel ?(bucket = Time.seconds 1) () =
  if bucket <= 0 then invalid_arg "Timeline.attach: bucket <= 0";
  let t =
    {
      kernel;
      bucket;
      rows = Hashtbl.create 16;
      last_select = None;
      first_time = -1;
      last_time = 0;
    }
  in
  Kernel.set_tracer kernel (Some (fun time line -> on_event t time line));
  t

let detach t = Kernel.set_tracer t.kernel None

let render ?(width = 72) t =
  if width <= 0 then invalid_arg "Timeline.render: width <= 0";
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.rows [] |> List.sort compare
  in
  if names = [] then "(no activity recorded)\n"
  else begin
    let first_bucket = max 0 t.first_time / t.bucket in
    let last_bucket = t.last_time / t.bucket in
    let buckets = last_bucket - first_bucket + 1 in
    (* merge adjacent buckets if the chart would overflow [width] *)
    let per_col = (buckets + width - 1) / width in
    let cols = (buckets + per_col - 1) / per_col in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "timeline: %d columns x %s each\n" cols
         (Format.asprintf "%a" Time.pp (per_col * t.bucket)));
    List.iter
      (fun name ->
        let row = Hashtbl.find t.rows name in
        Buffer.add_string buf (Printf.sprintf "%-12s|" name);
        for col = 0 to cols - 1 do
          let ticks = ref 0 in
          for b = 0 to per_col - 1 do
            let bucket = first_bucket + (col * per_col) + b in
            ticks := !ticks + Option.value ~default:0 (Hashtbl.find_opt row bucket)
          done;
          let capacity = per_col * t.bucket in
          let glyph =
            if !ticks * 3 > capacity * 2 then '#'
            else if !ticks * 3 > capacity then '+'
            else if !ticks > 0 then '.'
            else ' '
          in
          Buffer.add_char buf glyph
        done;
        Buffer.add_string buf "|\n")
      names;
    Buffer.contents buf
  end

let cpu_of t name =
  match Hashtbl.find_opt t.rows name with
  | None -> 0
  | Some row -> Hashtbl.fold (fun _ ticks acc -> acc + ticks) row 0
