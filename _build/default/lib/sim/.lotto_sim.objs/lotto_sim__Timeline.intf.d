lib/sim/timeline.mli: Kernel Time
