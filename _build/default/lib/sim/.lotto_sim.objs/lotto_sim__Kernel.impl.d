lib/sim/kernel.ml: Array Effect Effects Heap List Option Printexc Printf Queue Time Types
