lib/sim/api.ml: Effect Effects Time
