lib/sim/timeline.ml: Buffer Format Hashtbl Kernel List Option Printf String Time
