lib/sim/heap.mli:
