lib/sim/effects.ml: Effect Types
