lib/sim/api.mli: Time Types
