lib/sim/kernel.mli: Time Types
