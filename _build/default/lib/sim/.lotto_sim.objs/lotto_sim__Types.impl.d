lib/sim/types.ml: Effect Queue Time
