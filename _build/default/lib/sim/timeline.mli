(** ASCII execution timelines.

    Attaches to a kernel's tracer, records which thread each quantum went
    to, and renders a Gantt-style chart — one row per thread, one column
    per time bucket, with the glyph showing how much of the bucket the
    thread received. Handy for eyeballing proportional shares and transfer
    effects in examples and while debugging schedulers.

    Recording replaces any tracer previously installed on the kernel. *)

type t

val attach : Kernel.t -> ?bucket:Time.t -> unit -> t
(** Start recording. [bucket] is the rendering column width (default 1 s). *)

val detach : t -> unit
(** Stop recording (uninstalls the tracer). *)

val render : ?width:int -> t -> string
(** Render rows for every thread observed, covering the recorded interval;
    at most [width] columns (default 72; the bucket width grows to fit).
    Glyphs: ['#'] > 2/3 of the bucket, ['+'] > 1/3, ['.'] > 0, space =
    none. *)

val cpu_of : t -> string -> int
(** Recorded CPU ticks for a thread name ([0] if never seen). *)
