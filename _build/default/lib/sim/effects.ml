(** Effects performed by simulated threads and handled by {!Kernel}.

    Thread bodies are ordinary OCaml functions; each kernel request is an
    effect whose continuation the kernel captures, turning the body into a
    coroutine scheduled in virtual time. Use the wrappers in {!Api} rather
    than performing these directly. *)

type _ Effect.t +=
  | Compute : int -> unit Effect.t  (** consume CPU ticks (preemptible) *)
  | Sleep : int -> unit Effect.t  (** block for a duration without CPU use *)
  | Rpc : Types.port * string -> string Effect.t
      (** synchronous RPC: send, block until the server replies *)
  | Rpc_many : (Types.port * string) list -> string list Effect.t
      (** scatter-gather: send to several servers, block until all reply;
          the caller's ticket transfer is divided equally among them *)
  | Receive : Types.port -> Types.message Effect.t
  | Poll_receive : Types.port -> Types.message option Effect.t
      (** take a queued request without blocking *)
  | Reply : Types.message * string -> unit Effect.t
  | Lock : Types.mutex -> unit Effect.t
  | Unlock : Types.mutex -> unit Effect.t
  | Wait : Types.condition * Types.mutex -> unit Effect.t
      (** atomically release the mutex and block on the condition *)
  | Signal : Types.condition -> unit Effect.t
  | Broadcast : Types.condition -> unit Effect.t
  | Sem_wait : Types.semaphore -> unit Effect.t
  | Sem_post : Types.semaphore -> unit Effect.t
  | Join : Types.thread -> unit Effect.t
      (** block until the target thread exits; the waiter's rights fund the
          target meanwhile (one more ticket-transfer site) *)
  | Yield : unit Effect.t  (** give up the rest of the quantum *)
  | Now : Types.time Effect.t
  | Self : Types.thread Effect.t
  | Spawn : string * (unit -> unit) -> Types.thread Effect.t
