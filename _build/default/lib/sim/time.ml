type t = int

let us t = t
let ms t = t * 1_000
let seconds t = t * 1_000_000
let to_seconds t = float_of_int t /. 1e6
let to_ms t = float_of_int t /. 1e3
let pp fmt t = Format.fprintf fmt "%.3fs" (to_seconds t)
