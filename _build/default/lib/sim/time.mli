(** Virtual time. One tick is one microsecond of simulated CPU time. *)

type t = int

val us : int -> t
val ms : int -> t
val seconds : int -> t
val to_seconds : t -> float
val to_ms : t -> float
val pp : Format.formatter -> t -> unit
(** Prints as seconds with millisecond precision, e.g. ["12.345s"]. *)
