(** Monte-Carlo integration with dynamically controlled ticket inflation
    (paper §5.2, Figure 6).

    Each task estimates [integral of sqrt(1 - x^2) on [0,1]] (i.e. pi/4) by
    uniform sampling, tracking the running relative error of its estimate.
    Periodically the task sets its funding ticket's amount proportional to
    the {e square} of its relative error, the paper's policy: since Monte-
    Carlo error decreases as [1/sqrt(trials)], a freshly started experiment
    holds a large ticket and rapidly catches up with older ones, tapering
    off as its error converges to theirs. *)

type t

val spawn :
  Lotto_sim.Kernel.t ->
  Lotto_sched.Lottery_sched.t ->
  name:string ->
  rng:Lotto_prng.Rng.t ->
  from:Lotto_tickets.Funding.currency ->
  ?trial_cost:Lotto_sim.Time.t ->
  ?batch:int ->
  ?scale:float ->
  ?exponent:float ->
  ?window:Lotto_sim.Time.t ->
  ?start_at:Lotto_sim.Time.t ->
  unit ->
  t
(** [trial_cost] CPU per trial (default 50 us); [batch] trials between
    funding updates (default 2000); [scale] and [exponent] in
    [ticket = scale * error^exponent] (defaults 1e10 and 2 — the paper's
    square; its footnote 6 discusses linear and cubic variants, compared by
    the [mc-convergence] ablation); [window] recording bin width (default
    8 s); [start_at] virtual start time — Figure 6 staggers tasks by
    120 s. *)

val thread : t -> Lotto_sim.Types.thread
val trials : t -> int
val estimate : t -> float
(** Current estimate of pi/4 (NaN before any trial). *)

val relative_error : t -> float
(** Standard error of the mean over the estimate, [infinity] before two
    batches. *)

val current_ticket : t -> int
(** Current funding ticket amount (after the last inflation update). *)

val cumulative : t -> upto:Lotto_sim.Time.t -> int array
(** Cumulative trials per window — Figure 6's series. *)

val rate_per_second : t -> upto:Lotto_sim.Time.t -> float array
