(** Synthetic mutex-contention application (paper §6.1, Figures 10–11).

    [n] threads repeatedly acquire a shared mutex, hold it for [hold] CPU
    time, release it, then compute for [work] before trying again. With a
    lottery-scheduled mutex, both the acquisition throughput and the mutex
    waiting times of thread groups track their ticket ratios. *)

type t

val spawn_contender :
  Lotto_sim.Kernel.t ->
  mutex:Lotto_sim.Types.mutex ->
  name:string ->
  ?hold:Lotto_sim.Time.t ->
  ?work:Lotto_sim.Time.t ->
  unit ->
  t
(** [hold] and [work] both default to 50 ms, the paper's configuration. *)

val thread : t -> Lotto_sim.Types.thread
val acquisitions : t -> int
val waiting_times : t -> float array
(** Seconds spent blocked before each acquisition, in order. *)

val mean_wait : t -> float
(** [nan] before the first acquisition. *)
