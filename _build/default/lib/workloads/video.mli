(** MPEG-viewer workload model (paper §5.4, Figure 8).

    Each viewer decodes and displays frames in a loop; a frame costs a fixed
    amount of CPU, so the achieved frame rate is proportional to the
    viewer's CPU share. The paper ran three [mpeg_play] viewers on the same
    music video with a 3:2:1 allocation changed to 3:1:2 mid-run; the
    experiment module re-funds viewers the same way. *)

type t

val spawn_viewer :
  Lotto_sim.Kernel.t ->
  name:string ->
  ?frame_cost:Lotto_sim.Time.t ->
  ?window:Lotto_sim.Time.t ->
  unit ->
  t
(** [frame_cost] defaults to 200 ms of CPU per frame (the paper's viewers
    achieved a few frames per second on the shared DECStation); [window]
    defaults to 1 s. *)

val thread : t -> Lotto_sim.Types.thread
val frames : t -> int
val cumulative : t -> upto:Lotto_sim.Time.t -> int array
(** Cumulative frames per window — Figure 8's series. *)

val fps : t -> lo:Lotto_sim.Time.t -> hi:Lotto_sim.Time.t -> float
(** Average frame rate over a virtual-time interval. *)
