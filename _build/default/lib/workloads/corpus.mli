(** Deterministic synthetic text corpus.

    The paper's database server loads the complete plays of Shakespeare
    (4.6 MB) and serves case-insensitive substring counts; the word
    "lottery" occurs 8 times. We cannot ship Shakespeare, so this module
    generates a reproducible corpus from a seeded generator with a
    Zipf-distributed vocabulary, and plants a chosen needle a chosen number
    of times so queries have a known answer (our nod to the paper's 8
    occurrences of "lottery"). *)

val generate :
  ?seed:int -> ?size_bytes:int -> ?needle:string -> ?occurrences:int -> unit -> string
(** Defaults: seed 1994, 512 KiB, needle ["lottery"], 8 occurrences. The
    needle is planted as a standalone word at deterministic positions and
    never occurs otherwise (vocabulary words cannot contain it). *)

val count_substring : haystack:string -> needle:string -> int
(** Case-insensitive non-overlapping substring count — the server's query
    operation. *)
