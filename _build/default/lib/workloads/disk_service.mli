(** Disk bandwidth as a kernel-level lottery-scheduled resource.

    The paper generalizes lottery scheduling to "I/O bandwidth … a lottery
    can be used to allocate resources wherever queueing is necessary"
    (§6), with disk bandwidth called out for database use (footnote 7).
    This module runs a {e disk server thread} inside the simulation: client
    threads issue synchronous reads; whenever the device is free the server
    holds a lottery among the queued requests weighted by each client's
    {e disk tickets} — a resource domain separate from CPU tickets, so a
    thread can be CPU-rich but I/O-poor and vice versa (the premise of the
    §6.3 multi-resource discussion).

    Service time follows the usual seek model: [seek_cost] per cylinder
    travelled plus a fixed [transfer_cost]. The server thread {e sleeps}
    for the service time — the mechanism runs in parallel with the CPU, as
    real disks do — so clients keep the queue contended and the per-slot
    lottery governs who advances. What little CPU the server needs comes
    from its blocked clients' ticket transfers, like any server in the
    paper. *)

type t

val start :
  Lotto_sim.Kernel.t ->
  rng:Lotto_prng.Rng.t ->
  name:string ->
  ?cylinders:int ->
  ?seek_cost:Lotto_sim.Time.t ->
  ?transfer_cost:Lotto_sim.Time.t ->
  unit ->
  t
(** Defaults: 1000 cylinders, seek 10 us/cylinder, transfer 2 ms. *)

val set_disk_tickets : t -> Lotto_sim.Types.thread -> int -> unit
(** Allocate disk tickets to a client thread (default 1 for unregistered
    clients: nonzero, per the paper's starvation-freedom guarantee). *)

val read : t -> cylinder:int -> unit
(** Called from inside a client thread: block until the read completes. *)

val reads_completed : t -> Lotto_sim.Types.thread -> int
val total_reads : t -> int
val head_position : t -> int
