(** The multithreaded client-server text-search application of §5.3
    (Figure 7).

    The server owns a port and several worker threads; each query is a
    case-insensitive substring count over the server's corpus, answered via
    synchronous RPC. As in the paper, the server holds {e no} tickets of its
    own: it runs entirely on rights transferred from blocked clients, so
    client ticket allocations govern both throughput and response time. *)

type server

val start_server :
  Lotto_sim.Kernel.t ->
  name:string ->
  ?workers:int ->
  ?query_cost:Lotto_sim.Time.t ->
  corpus:string ->
  unit ->
  server
(** [workers] defaults to 3; [query_cost] is the CPU charged per query
    (default 2 s — a full scan of a few-hundred-KiB corpus on the paper's
    25 MHz DECStation took seconds). *)

val port : server -> Lotto_sim.Types.port
val queries_served : server -> int

type client

val spawn_client :
  Lotto_sim.Kernel.t ->
  server ->
  name:string ->
  query:string ->
  ?max_queries:int ->
  ?start_at:Lotto_sim.Time.t ->
  unit ->
  client
(** The client issues queries back-to-back. With [max_queries] it exits
    after that many completions (the paper's high-priority client issues 20
    and terminates); otherwise it runs forever. *)

val thread : client -> Lotto_sim.Types.thread
val completions : client -> int
val last_result : client -> int option
(** Match count returned by the most recent query. *)

val response_times : client -> float array
(** Response times in virtual seconds, in completion order. *)

val completion_times : client -> Lotto_sim.Time.t array
(** Virtual time of each completion — Figure 7's cumulative-queries
    series. *)

val mean_response_time : client -> float
(** In virtual seconds; [nan] before the first completion. *)
