(** Compute-bound iteration workload: our stand-in for the Dhrystone
    benchmark used throughout the paper's evaluation (Figures 4, 5, 9 and
    the overhead runs in §5.6). Each iteration consumes a fixed amount of
    virtual CPU; iteration counts per time window are recorded. *)

type t

val spawn :
  Lotto_sim.Kernel.t ->
  name:string ->
  ?cost:Lotto_sim.Time.t ->
  ?window:Lotto_sim.Time.t ->
  ?start_at:Lotto_sim.Time.t ->
  unit ->
  t
(** [cost] is CPU per iteration (default 1 ms, ~1000 iterations/s at full
    speed); [window] the recording bin width (default 1 s); [start_at]
    delays the loop's start (default 0). The thread runs forever. *)

val thread : t -> Lotto_sim.Types.thread
val iterations : t -> int

val iterations_between : t -> lo:Lotto_sim.Time.t -> hi:Lotto_sim.Time.t -> int
(** Iterations completed in [\[lo, hi)], from the window recorder (window
    boundaries must align for exact counts). *)

val windows : t -> upto:Lotto_sim.Time.t -> int array
val cumulative : t -> upto:Lotto_sim.Time.t -> int array
val rate_per_second : t -> upto:Lotto_sim.Time.t -> float array
