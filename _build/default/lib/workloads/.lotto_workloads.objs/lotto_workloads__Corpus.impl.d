lib/workloads/corpus.ml: Array Buffer Lotto_prng String
