lib/workloads/spinner.ml: Api Array Kernel Lotto_sim Lotto_stats Option Time Types
