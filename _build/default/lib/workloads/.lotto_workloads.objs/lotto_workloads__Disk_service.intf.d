lib/workloads/disk_service.mli: Lotto_prng Lotto_sim
