lib/workloads/mutex_workload.ml: Api Array Kernel Lotto_sim Lotto_stats Option Time Types
