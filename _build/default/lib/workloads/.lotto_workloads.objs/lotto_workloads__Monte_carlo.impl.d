lib/workloads/monte_carlo.ml: Api Float Kernel Lotto_prng Lotto_sched Lotto_sim Lotto_stats Option Time Types
