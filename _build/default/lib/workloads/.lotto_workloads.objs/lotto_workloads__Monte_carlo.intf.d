lib/workloads/monte_carlo.mli: Lotto_prng Lotto_sched Lotto_sim Lotto_tickets
