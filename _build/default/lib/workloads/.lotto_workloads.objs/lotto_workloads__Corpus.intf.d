lib/workloads/corpus.mli:
