lib/workloads/video.mli: Lotto_sim
