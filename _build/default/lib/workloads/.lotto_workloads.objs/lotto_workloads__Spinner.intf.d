lib/workloads/spinner.mli: Lotto_sim
