lib/workloads/mutex_workload.mli: Lotto_sim
