lib/workloads/db.ml: Api Array Corpus Kernel Lotto_sim Lotto_stats Option Printf Time Types
