lib/workloads/disk_service.ml: Api Hashtbl Kernel List Lotto_prng Lotto_sim Option Time Types
