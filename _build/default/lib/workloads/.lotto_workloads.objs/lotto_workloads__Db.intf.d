lib/workloads/db.mli: Lotto_sim
