lib/ctl/scenario.mli: Lotto_sim
