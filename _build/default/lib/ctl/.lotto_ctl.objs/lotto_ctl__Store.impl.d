lib/ctl/store.ml: Buffer Hashtbl Kernel List Lotto_prng Lotto_sched Lotto_sim Lotto_tickets Lotto_workloads Option Printf String Sys Time
