lib/ctl/store.mli: Lotto_tickets
