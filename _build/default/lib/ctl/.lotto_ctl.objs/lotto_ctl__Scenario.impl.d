lib/ctl/scenario.ml: Api Filename Kernel List Lotto_prng Lotto_sched Lotto_sim Lotto_tickets Option Printf String Time Timeline
