(** Persistent currency/ticket store backing the [lotteryctl] command-line
    interface — the paper's §4.7 user commands ([mktkt], [rmtkt], [mkcur],
    [rmcur], [fund], [unfund], [lstkt], [lscur], [fundx]) over a funding
    graph serialized to a text file.

    Tickets get stable user-facing labels ([t1], [t2], …) that survive
    save/load. The [simulate] command is our [fundx] analog: it replays the
    stored funding graph in a fresh lottery-scheduled kernel with one
    compute-bound thread per {e held} ticket and reports the CPU split.

    Commands execute on behalf of a {e principal} ([exec ~user]) and are
    checked against per-currency owners and grants ({!Lotto_tickets.Acl} —
    the §4.7 protection the Mach prototype lacked): creating tickets in a
    currency requires its [issue] permission, funding a currency requires
    its [fund] permission, and [chown]/[grant]/[ungrant]/[rmcur] require
    [manage]. Ownership and grants persist in the state file. *)

type t

val create : unit -> t

(** {1 Persistence} *)

val save : t -> string
(** Serialize to the line-oriented text format. *)

val load : string -> (t, string) result
(** Parse a previously saved store. *)

val load_file : string -> (t, string) result
(** [Ok (create ())] when the file does not exist. *)

val save_file : t -> string -> (unit, string) result

(** {1 Commands} *)

type cmd =
  | Mkcur of string
  | Rmcur of string
  | Mktkt of { amount : int; denom : string }
      (** issue a new (unattached) ticket, returns its label *)
  | Rmtkt of string
  | Fund of { ticket : string; currency : string }
  | Unfund of string
  | Hold of string  (** mark a ticket as held by a competing client *)
  | Release of string
  | Lscur
  | Lstkt
  | Eval  (** base-unit value of every currency and ticket *)
  | Draw of { n : int; seed : int }
      (** hold [n] lotteries among held tickets, report win counts *)
  | Simulate of { seconds : int; seed : int }  (** the fundx analog *)
  | Dot  (** Graphviz rendering of the funding graph *)
  | Chown of { currency : string; new_owner : string }
  | Grant of { currency : string; principal : string; perm : string }
  | Ungrant of { currency : string; principal : string; perm : string }

val parse_command : string list -> (cmd, string) result
(** Parse argv-style words, e.g. [["fund"; "t3"; "alice"]]. *)

val exec : ?user:string -> t -> cmd -> (string, string) result
(** Execute as [user] (default ["root"], which owns the base currency),
    returning human-readable output. Mutates the store. *)

val system : t -> Lotto_tickets.Funding.system
(** The underlying funding graph (for tests). *)

val acl : t -> Lotto_tickets.Acl.t
