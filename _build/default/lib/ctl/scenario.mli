(** Scenario-driven simulations for the [lottosim] tool.

    A scenario is a small text program describing currencies, threads and a
    run horizon; running it builds a lottery-scheduled kernel, executes it,
    and reports each thread's CPU share plus an execution timeline. It
    makes "what does a 3:2:1 split under my workload look like?" a
    one-file question.

    Syntax (one directive per line, [#] comments):
    {v
    seed 42                    # optional, default 1
    quantum 100ms              # optional, default 100ms
    currency alice 1000 base   # name, funding amount, funding source
    thread a1 spin 1ms 100 alice        # compute-bound: cost per iteration
    thread a2 spin 1ms 200 alice
    thread ivy interactive 20ms 80ms 100 base   # compute then sleep, repeat
    run 60s
    v}

    Durations accept [us], [ms] and [s] suffixes. Threads are funded with
    [amount currency]. [run] must appear exactly once, last. *)

type t

type report = {
  rows : (string * int * float) list;
      (** thread name, cpu ticks, share of total cpu *)
  timeline : string;
  horizon : Lotto_sim.Time.t;
}

val parse : string -> (t, string) result
val parse_file : string -> (t, string) result
val run : t -> report
