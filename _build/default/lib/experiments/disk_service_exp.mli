(** §6/§6.3 extension — disk bandwidth as an in-kernel lottery resource,
    separate from CPU tickets.

    Phase 1: three I/O-bound threads with equal CPU funding but 3:2:1
    {e disk} tickets hammer the disk service; completed reads split by disk
    tickets (CPU tickets are irrelevant to an I/O-bound workload).

    Phase 2 (resource independence): a CPU-rich / disk-poor thread races a
    CPU-poor / disk-rich one on the same I/O-bound loop — the disk-rich
    thread wins despite a 10x CPU disadvantage, because rights are
    per-resource (the premise of the paper's §6.3 multi-resource
    discussion). *)

type phase1_row = { name : string; disk_tickets : int; reads : int; share : float }

type t = {
  phase1 : phase1_row array;
  cpu_rich_reads : int;  (** 1000 CPU / 1 disk ticket *)
  disk_rich_reads : int;  (** 100 CPU / 10 disk tickets *)
}

val run : ?seed:int -> ?duration:Lotto_sim.Time.t -> unit -> t
val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
