(** Figure 9 — currencies insulate loads (§5.5).

    Users A and B hold identically funded currencies. A runs tasks A1, A2
    with 100.A and 200.A; B runs B1, B2 with 100.B and 200.B. Halfway
    through, B starts B3 with 300.B, inflating B's internal total from 300
    to 600. The inflation is locally contained: A1 and A2 are unaffected
    (and the aggregate A : B progress stays 1:1), while B1 and B2 drop to
    roughly half their former rates. *)

type task_result = {
  name : string;
  cumulative : int array;
  rate_before : float;  (** iterations/s before B3 starts *)
  rate_after : float;
}

type t = {
  tasks : task_result array;  (** A1 A2 B1 B2 B3 *)
  switch_at : Lotto_sim.Time.t;
  a_aggregate_ratio : float;  (** A total before-rate / after-rate, ideal 1 *)
  b1_drop : float;  (** B1 after/before, ideal 0.5 *)
  b2_drop : float;
  a_over_b_after : float;  (** aggregate A rate / B rate after B3, ideal 1 *)
}

val run : ?seed:int -> ?duration:Lotto_sim.Time.t -> unit -> t
val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
