lib/experiments/fig4.ml: Array Common Hashtbl Kernel List Lotto_sim Lotto_stats Lotto_workloads Printf String Time
