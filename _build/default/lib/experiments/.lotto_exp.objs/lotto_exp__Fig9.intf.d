lib/experiments/fig9.mli: Lotto_sim
