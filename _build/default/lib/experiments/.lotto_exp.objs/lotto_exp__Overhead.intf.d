lib/experiments/overhead.mli: Lotto_sim
