lib/experiments/io.mli:
