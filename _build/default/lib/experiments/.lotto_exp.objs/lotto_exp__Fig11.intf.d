lib/experiments/fig11.mli: Lotto_sim Lotto_stats
