lib/experiments/fig7.mli: Lotto_sim
