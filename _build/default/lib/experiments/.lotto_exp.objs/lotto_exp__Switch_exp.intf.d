lib/experiments/switch_exp.mli:
