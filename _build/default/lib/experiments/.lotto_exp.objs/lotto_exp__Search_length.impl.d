lib/experiments/search_length.ml: Array Common Float Fun List Lotto_draw Lotto_prng Printf
