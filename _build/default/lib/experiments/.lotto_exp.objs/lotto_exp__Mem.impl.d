lib/experiments/mem.ml: Array Common List Lotto_prng Lotto_res Printf
