lib/experiments/common.ml: Array Format Kernel List Lotto_prng Lotto_sched Lotto_sim Printf String Time
