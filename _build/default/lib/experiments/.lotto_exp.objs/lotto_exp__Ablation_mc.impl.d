lib/experiments/ablation_mc.ml: Array Common Kernel List Lotto_prng Lotto_sim Lotto_workloads Printf Time
