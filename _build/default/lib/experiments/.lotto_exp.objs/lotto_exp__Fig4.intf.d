lib/experiments/fig4.mli: Lotto_sim
