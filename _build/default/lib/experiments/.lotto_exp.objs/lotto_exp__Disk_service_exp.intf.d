lib/experiments/disk_service_exp.mli: Lotto_sim
