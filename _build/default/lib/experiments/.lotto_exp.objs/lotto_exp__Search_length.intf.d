lib/experiments/search_length.mli:
