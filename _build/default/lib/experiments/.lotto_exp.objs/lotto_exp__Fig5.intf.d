lib/experiments/fig5.mli: Lotto_sim
