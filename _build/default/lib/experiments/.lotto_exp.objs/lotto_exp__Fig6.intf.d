lib/experiments/fig6.mli: Lotto_sim
