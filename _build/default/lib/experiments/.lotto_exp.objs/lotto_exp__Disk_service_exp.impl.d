lib/experiments/disk_service_exp.ml: Api Array Common Kernel List Lotto_prng Lotto_sim Lotto_workloads Printf Time
