lib/experiments/manager_exp.mli:
