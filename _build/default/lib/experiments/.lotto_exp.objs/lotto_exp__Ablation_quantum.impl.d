lib/experiments/ablation_quantum.ml: Array Common Float Kernel List Lotto_sim Lotto_stats Lotto_workloads Printf Time
