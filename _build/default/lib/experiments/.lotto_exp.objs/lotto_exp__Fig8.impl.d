lib/experiments/fig8.ml: Array Common Kernel List Lotto_sim Lotto_workloads Printf Time
