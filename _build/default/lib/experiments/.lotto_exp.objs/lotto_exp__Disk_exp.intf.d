lib/experiments/disk_exp.mli:
