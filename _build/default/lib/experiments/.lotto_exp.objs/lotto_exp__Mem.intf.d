lib/experiments/mem.mli:
