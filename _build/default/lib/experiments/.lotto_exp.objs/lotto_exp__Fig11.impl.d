lib/experiments/fig11.ml: Array Common Kernel List Lotto_sim Lotto_stats Lotto_workloads Printf Time Types
