lib/experiments/ablation_variance.mli: Lotto_sim
