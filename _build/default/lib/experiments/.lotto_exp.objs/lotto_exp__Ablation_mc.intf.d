lib/experiments/ablation_mc.mli: Lotto_sim
