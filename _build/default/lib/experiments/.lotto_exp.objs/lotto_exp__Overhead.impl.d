lib/experiments/overhead.ml: Array Common Kernel List Lotto_prng Lotto_sched Lotto_sim Lotto_workloads Printf Sys Time Types
