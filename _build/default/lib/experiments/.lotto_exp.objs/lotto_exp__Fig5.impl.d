lib/experiments/fig5.ml: Array Common Kernel Lotto_sim Lotto_workloads Printf Time
