lib/experiments/fig7.ml: Array Common Kernel List Lotto_sim Lotto_workloads Printf Time
