lib/experiments/ablation_quantum.mli: Lotto_sim
