lib/experiments/fig8.mli: Lotto_sim
