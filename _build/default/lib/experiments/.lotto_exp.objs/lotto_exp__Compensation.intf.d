lib/experiments/compensation.mli: Lotto_sim
