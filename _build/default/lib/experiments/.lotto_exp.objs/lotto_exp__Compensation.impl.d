lib/experiments/compensation.ml: Api Common Kernel Lotto_sim Time
