lib/experiments/common.mli: Format Lotto_sched Lotto_sim
