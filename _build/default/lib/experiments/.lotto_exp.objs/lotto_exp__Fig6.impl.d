lib/experiments/fig6.ml: Array Common Kernel List Lotto_prng Lotto_sim Lotto_workloads Printf Time
