lib/experiments/manager_exp.ml: Array Common List Lotto_prng Lotto_res Printf
