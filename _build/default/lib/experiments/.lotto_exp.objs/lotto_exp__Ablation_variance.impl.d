lib/experiments/ablation_variance.ml: Array Common Float Kernel List Lotto_sched Lotto_sim Lotto_stats Lotto_workloads Printf Time
