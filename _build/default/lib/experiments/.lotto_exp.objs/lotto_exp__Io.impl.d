lib/experiments/io.ml: Array Common List Lotto_prng Lotto_res Printf
