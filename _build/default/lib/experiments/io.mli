(** §6 — lottery-managed I/O bandwidth (disk queues / ATM virtual
    circuits).

    Three always-backlogged streams with a 3:2:1 ticket allocation share a
    device serving fixed-size slots; the served-slot split should track the
    allocation. Midway, the middle stream goes idle and its share must
    redistribute to the remaining streams in proportion to {e their}
    tickets (the §2.1 "lightly contended resource" property). *)

type phase_row = { name : string; tickets : int; served : int; share : float }

type t = {
  phase1 : phase_row array;  (** all three backlogged *)
  phase2 : phase_row array;  (** middle stream idle *)
}

val run : ?seed:int -> ?slots_per_phase:int -> unit -> t
val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
