(** §6 extension — lottery-scheduled virtual circuits on a congested
    switch port (the paper's ATM example, after [And93]).

    Port 0 is congested: three circuits with a 3:2:1 allocation each offer
    0.6 cells/slot (1.8 total against capacity 1). Port 1 is uncongested: a
    single low-ticket circuit offering 0.3. On the congested port delivered
    bandwidth tracks tickets and queueing delay orders inversely with them;
    the uncongested circuit is unaffected by its small allocation —
    §2.1's "a client will obtain more of a lightly contended resource". *)

type row = {
  name : string;
  tickets : int;
  offered : float;
  delivered : int;
  share : float;  (** of the congested port's capacity (ports measured separately) *)
  mean_delay : float;
  dropped : int;
}

type t = {
  congested : row array;
  uncongested : row;
  port0_utilization : float;
}

val run : ?seed:int -> ?slots:int -> unit -> t
val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
