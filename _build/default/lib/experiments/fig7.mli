(** Figure 7 — client-server query processing with ticket transfers (§5.3).

    Three clients with an 8:3:1 allocation issue substring-count queries to
    a multithreaded database server that holds no tickets of its own and
    runs entirely on rights transferred from blocked clients. The paper's
    high-priority client issues 20 queries and exits (having seen a large
    initial share); when it finished, the other two had completed about 10
    queries between them; their 3:1 allocation then yields a 7.51:2.69:1
    overall throughput ratio and mean response times of 17.19, 43.19 and
    132.20 s. *)

type client_result = {
  name : string;
  tickets : int;
  completions : int;
  completion_times : Lotto_sim.Time.t array;
  mean_response : float;  (** seconds *)
  last_result : int option;  (** substring count from the final query *)
}

type t = {
  clients : client_result array;  (** A, B, C *)
  served_total : int;
  b_c_completions_when_a_done : int * int;
  phase1_responses : float array;
      (** mean response times (s) over the contended phase, i.e. completions
          before A's exit — the regime the paper's means reflect *)
}

val run :
  ?seed:int ->
  ?duration:Lotto_sim.Time.t ->
  ?query_cost:Lotto_sim.Time.t ->
  ?workers:int ->
  ?a_queries:int ->
  unit ->
  t
(** Defaults: 800 s horizon, 8 s query cost, 3 workers, A exits after 20
    queries. *)

val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
