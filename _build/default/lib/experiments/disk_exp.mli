(** §6 extension — lottery-scheduled disk bandwidth (footnote 7).

    Three backlogged clients with a 3:2:1 allocation issue requests to
    uniformly random cylinders. Under the lottery head scheduler the served
    shares track tickets; FCFS splits evenly but seeks wildly; SSTF wins on
    raw throughput while ignoring tickets. The table reports, per policy:
    served shares, mean latency, total requests per unit time (throughput)
    and total seek distance. *)

type client_row = {
  name : string;
  tickets : int;
  served : int;
  share : float;
  mean_latency : float;
}

type policy_result = {
  policy : string;
  clients : client_row array;
  throughput : float;  (** requests per million ticks *)
  seek_distance : int;
}

type t = { results : policy_result array (** lottery, fcfs, sstf *) }

val run : ?seed:int -> ?duration:int -> unit -> t
(** [duration] in virtual disk ticks (default 50 million). *)

val print : t -> unit

val lottery_shares : t -> float array

val to_csv : t -> string
(** Serialize the result for external plotting. *)
