(** Figures 10 & 11 — lottery-scheduled mutex (§6.1).

    Eight threads in two groups (A, B) with a 2:1 per-thread ticket ratio
    contend for one lottery-scheduled mutex, each iteration holding it for
    50 ms and then computing 50 ms. Over a two-minute run the paper
    measured 763 vs 423 acquisitions (1.80:1) and mean waiting times of
    450 ms vs 948 ms (1:2.11). *)

type group_result = {
  label : string;
  acquisitions : int;
  mean_wait : float;  (** seconds *)
  wait_stddev : float;
  histogram : Lotto_stats.Histogram.t;
}

type t = {
  group_a : group_result;
  group_b : group_result;
  acquisition_ratio : float;  (** A/B, ideal ~2 (paper observed 1.80) *)
  wait_ratio : float;  (** B/A, ideal ~2 (paper observed 2.11) *)
}

val run :
  ?seed:int ->
  ?duration:Lotto_sim.Time.t ->
  ?group_size:int ->
  ?hold:Lotto_sim.Time.t ->
  ?work:Lotto_sim.Time.t ->
  unit ->
  t

val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
