(** §6.3 — multiple resources and manager threads (the paper's future-work
    sketch, implemented).

    Rights for every resource are tickets, so "clients can use quantitative
    comparisons to make decisions involving tradeoffs between different
    resources". Two applications share a CPU and an I/O device, each slot
    allocated by ticket lottery per resource. Each app holds a fixed total
    ticket budget split between the two resource currencies, and needs CPU
    and I/O in different proportions per unit of work (one is
    compute-heavy, the other I/O-heavy).

    With a {e static} 50/50 split, both apps drown in tickets on the
    resource they barely use. With the paper's proposed {e manager} (a
    small agent re-evaluating funding each epoch), each app shifts tickets
    toward its bottleneck resource; throughput rises for both. *)

type app_row = {
  name : string;
  cpu_need : int;
  io_need : int;  (** slots per unit of work *)
  work_done : int;
  final_cpu_tickets : int;
  final_io_tickets : int;
}

type policy_result = { policy : string; apps : app_row array; total_work : int }

type t = { static : policy_result; managed : policy_result }

val run : ?seed:int -> ?epochs:int -> unit -> t
val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
