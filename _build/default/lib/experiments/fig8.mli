(** Figure 8 — controlling video display rates (§5.4).

    Three viewers of the same video receive a 3:2:1 allocation, changed to
    3:1:2 midway through the run. The paper observed frame-rate ratios of
    1.92:1.50:1 before and 1.92:1:1.53 after the change (against ideals of
    3:2:1 and 3:1:2 — the single-threaded X server distorted the absolute
    split, a limitation our simulator does not share). *)

type viewer_result = {
  name : string;
  cumulative : int array;
  fps_before : float;
  fps_after : float;
}

type t = {
  viewers : viewer_result array;  (** A, B, C *)
  switch_at : Lotto_sim.Time.t;
  ratios_before : float * float;  (** A/C, B/C; ideal 3, 2 *)
  ratios_after : float * float;  (** A/B, C/B; ideal 3, 2 *)
}

val run :
  ?seed:int ->
  ?duration:Lotto_sim.Time.t ->
  ?frame_cost:Lotto_sim.Time.t ->
  unit ->
  t
(** Defaults: 300 s, switch at half time, 200 ms/frame. *)

val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
