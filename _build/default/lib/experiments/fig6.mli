(** Figure 6 — Monte-Carlo execution rates under dynamic ticket inflation.

    Three identical Monte-Carlo integrations start staggered (the paper
    starts them two minutes apart) inside one mutually-trusting currency.
    Each task periodically sets its ticket value proportional to the square
    of its current relative error, so a newly started task runs at a high
    rate that tapers off as its error approaches the older tasks' — the
    cumulative-trials curves converge ("bumps" in the older curves mark
    each newcomer's catch-up phase). *)

type task_result = {
  name : string;
  start_at : Lotto_sim.Time.t;
  cumulative : int array;  (** trials per window, cumulative *)
  final_trials : int;
  final_error : float;
  final_estimate : float;
}

type t = { window : Lotto_sim.Time.t; tasks : task_result array }

val run :
  ?seed:int ->
  ?duration:Lotto_sim.Time.t ->
  ?stagger:Lotto_sim.Time.t ->
  ?window:Lotto_sim.Time.t ->
  unit ->
  t
(** Defaults: 600 s run, 120 s stagger, 8 s windows. *)

val print : t -> unit

val convergence_spread : t -> float
(** [(max final trials - min final trials) / max final trials] — small when
    the curves have converged. *)

val to_csv : t -> string
(** Serialize the result for external plotting. *)
