(** §6.2 — inverse-lottery memory management.

    The paper proposes (without measuring) choosing a page-revocation victim
    with probability proportional to [(1 - t_i/T)] times the client's share
    of physical memory. This experiment realizes the proposal: three
    clients with a 3:2:1 ticket allocation and identical overcommitted
    working sets run to steady state; under the inverse lottery the
    resident-set split orders by ticket holdings, while ticket-blind global
    LRU and random-victim policies split evenly. *)

type client_row = {
  name : string;
  tickets : int;
  resident : int;
  faults : int;
  fault_rate : float;  (** faults per access *)
}

type policy_result = { policy : string; clients : client_row array }

type t = { results : policy_result array (** inverse, lru, random *) }

val run :
  ?seed:int -> ?frames:int -> ?working_set:int -> ?steps:int -> unit -> t
(** Defaults: 300 frames, 400-page working sets, 300_000 accesses. *)

val print : t -> unit

val inverse_residents : t -> int array
(** Resident counts under the inverse-lottery policy, in 3:2:1 client
    order. *)

val to_csv : t -> string
(** Serialize the result for external plotting. *)
