lib/prng/park_miller.mli:
