lib/prng/rng.ml: Array Float Int64 Park_miller Splitmix64 Xoshiro256
