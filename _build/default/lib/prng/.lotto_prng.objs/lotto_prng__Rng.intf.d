lib/prng/rng.mli:
