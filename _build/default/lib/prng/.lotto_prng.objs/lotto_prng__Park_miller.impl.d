lib/prng/park_miller.ml:
