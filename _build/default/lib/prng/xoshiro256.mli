(** xoshiro256++ generator (Blackman & Vigna): long-period, high-quality
    64-bit generator used where statistical tests need more headroom than
    the 31-bit Park–Miller sequence offers. *)

type t

val create : seed:int -> t
(** State is expanded from [seed] with SplitMix64, as recommended by the
    authors. *)

val next_int64 : t -> int64
val copy : t -> t
