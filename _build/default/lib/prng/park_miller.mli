(** Park–Miller "minimal standard" multiplicative linear congruential
    generator, [s' = 16807 * s mod (2^31 - 1)].

    This is the generator the paper's prototype uses (Appendix A lists the
    10-instruction MIPS implementation of exactly this recurrence, after
    [Par88] and [Car90]). States lie in [\[1, 2^31 - 2\]]. *)

type t

val modulus : int
(** [2^31 - 1 = 2147483647]. *)

val create : seed:int -> t
(** Any seed is folded into the valid state range; a zero-equivalent seed is
    mapped to 1 (state 0 is a fixed point and must be avoided). *)

val next : t -> int
(** Advance and return the new state, uniform on [\[1, modulus - 1\]]. *)

val state : t -> int
val set_state : t -> int -> unit
val copy : t -> t
