(** SplitMix64 generator (Steele, Lea & Flood). Used both as a fast modern
    alternative to Park–Miller and to seed {!Xoshiro256}. *)

type t

val create : seed:int -> t
val next_int64 : t -> int64
(** Next 64-bit output. *)

val copy : t -> t
