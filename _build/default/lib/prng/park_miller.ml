type t = { mutable state : int }

let modulus = 0x7FFFFFFF (* 2^31 - 1, prime *)
let multiplier = 16807

let normalize seed =
  let r = seed mod (modulus - 1) in
  (* fold into [1, modulus - 1]; 0 is the recurrence's absorbing state *)
  if r <= 0 then r + modulus - 1 else r

let create ~seed = { state = normalize seed }

let next t =
  (* 16807 * (2^31 - 2) < 2^46: the product fits comfortably in OCaml's
     63-bit native int, so no Schrage decomposition is needed. *)
  let s = t.state * multiplier mod modulus in
  t.state <- s;
  s

let state t = t.state

let set_state t s =
  if s < 1 || s >= modulus then invalid_arg "Park_miller.set_state: out of range";
  t.state <- s

let copy t = { state = t.state }
