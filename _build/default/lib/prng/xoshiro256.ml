type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let create ~seed =
  let sm = Splitmix64.create ~seed in
  let s0 = Splitmix64.next_int64 sm in
  let s1 = Splitmix64.next_int64 sm in
  let s2 = Splitmix64.next_int64 sm in
  let s3 = Splitmix64.next_int64 sm in
  (* An all-zero state is a fixed point; SplitMix64 makes it astronomically
     unlikely, but guard anyway since seeds are user-supplied. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }
