(** Lottery-scheduled network switch (paper §6: "ATM switches schedule
    virtual circuits to determine which buffered cell should next be
    forwarded. Lottery scheduling could be used to provide different levels
    of service to virtual circuits competing for congested channels.").

    A slotted output-queued switch: each virtual circuit targets one output
    port and holds tickets. Every slot, each circuit receives a new cell
    with its configured arrival probability (dropped if its buffer is
    full), and every output port transmits one cell chosen by a lottery
    among the circuits with buffered cells for that port. Uncongested ports
    simply forward; on congested ports, delivered bandwidth tracks ticket
    shares. *)

type t
type circuit

val create : ?ports:int -> ?buffer_capacity:int -> rng:Lotto_prng.Rng.t -> unit -> t
(** Defaults: 4 output ports, 64-cell per-circuit buffers. *)

val add_circuit :
  t -> name:string -> output_port:int -> tickets:int -> rate:float -> circuit
(** [rate] is the per-slot cell arrival probability in [\[0, 1\]]. *)

val set_tickets : t -> circuit -> int -> unit
val set_rate : t -> circuit -> float -> unit
val circuit_name : circuit -> string

val step : t -> slots:int -> unit
(** Advance the switch: arrivals, then one transmission per port per
    slot. *)

val now : t -> int
(** Slots elapsed. *)

val delivered : t -> circuit -> int
val dropped : t -> circuit -> int
val backlog : t -> circuit -> int
val mean_delay : t -> circuit -> float
(** Mean slots a delivered cell spent buffered; [nan] before the first
    delivery. *)

val port_utilization : t -> int -> float
(** Fraction of slots in which the port transmitted. *)
