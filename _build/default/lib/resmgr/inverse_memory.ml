module Rng = Lotto_prng.Rng

type policy = Inverse_lottery | Global_lru | Global_random

type client = {
  id : int;
  name : string;
  mutable tickets : int;
  working_set : int;
  resident : (int, int) Hashtbl.t; (* vpage -> last-use stamp *)
  mutable faults : int;
  mutable accesses : int;
  mutable evictions : int;
}

type t = {
  pol : policy;
  frames : int;
  rng : Rng.t;
  mutable clients : client list; (* reverse creation order *)
  mutable used : int;
  mutable clock : int; (* LRU stamp source *)
  mutable next_id : int;
}

let[@warning "-16"] create ?(policy = Inverse_lottery) ~frames ~rng () =
  if frames <= 0 then invalid_arg "Inverse_memory.create: frames <= 0";
  { pol = policy; frames; rng; clients = []; used = 0; clock = 0; next_id = 0 }

let policy t = t.pol

let add_client t ~name ~tickets ~working_set =
  if tickets < 0 then invalid_arg "Inverse_memory.add_client: negative tickets";
  if working_set <= 0 then invalid_arg "Inverse_memory.add_client: working_set <= 0";
  let c =
    {
      id = t.next_id;
      name;
      tickets;
      working_set;
      resident = Hashtbl.create 64;
      faults = 0;
      accesses = 0;
      evictions = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.clients <- c :: t.clients;
  c

let set_tickets _t c tickets =
  if tickets < 0 then invalid_arg "Inverse_memory.set_tickets: negative";
  c.tickets <- tickets

let client_name c = c.name

let evict_lru_of t victim =
  let best = ref None in
  Hashtbl.iter
    (fun vpage stamp ->
      match !best with
      | None -> best := Some (vpage, stamp)
      | Some (_, s) -> if stamp < s then best := Some (vpage, stamp))
    victim.resident;
  match !best with
  | None -> assert false (* victims are chosen among resident-page holders *)
  | Some (vpage, _) ->
      Hashtbl.remove victim.resident vpage;
      victim.evictions <- victim.evictions + 1;
      t.used <- t.used - 1

let evict_random_of t victim =
  let n = Hashtbl.length victim.resident in
  let target = Rng.int_below t.rng n in
  let i = ref 0 in
  let chosen = ref None in
  Hashtbl.iter
    (fun vpage _ ->
      if !i = target then chosen := Some vpage;
      incr i)
    victim.resident;
  match !chosen with
  | None -> assert false
  | Some vpage ->
      Hashtbl.remove victim.resident vpage;
      victim.evictions <- victim.evictions + 1;
      t.used <- t.used - 1

let total_tickets t = List.fold_left (fun acc c -> acc + c.tickets) 0 t.clients

(* The paper's victim-selection weight: (1 - t_i/T) scaled by the fraction
   of physical memory the client occupies. Clients holding no frames cannot
   lose. *)
let inverse_weight t total c =
  if Hashtbl.length c.resident = 0 then 0.
  else begin
    let ticket_part =
      if total <= 0 then 1.
      else 1. -. (float_of_int c.tickets /. float_of_int total)
    in
    let occupancy = float_of_int (Hashtbl.length c.resident) /. float_of_int t.frames in
    (* A lone over-provisioned client (t_i = T) still has to self-evict. *)
    Float.max ticket_part 1e-9 *. occupancy
  end

let pick_victim t =
  match t.pol with
  | Global_random ->
      (* uniform over resident frames = weight proportional to occupancy *)
      let holders = List.filter (fun c -> Hashtbl.length c.resident > 0) t.clients in
      let total = List.fold_left (fun a c -> a + Hashtbl.length c.resident) 0 holders in
      let r = Rng.int_below t.rng total in
      let rec go acc = function
        | [] -> assert false
        | [ c ] -> c
        | c :: rest ->
            let acc = acc + Hashtbl.length c.resident in
            if r < acc then c else go acc rest
      in
      go 0 holders
  | Global_lru ->
      let best = ref None in
      List.iter
        (fun c ->
          Hashtbl.iter
            (fun _ stamp ->
              match !best with
              | None -> best := Some (c, stamp)
              | Some (_, s) -> if stamp < s then best := Some (c, stamp))
            c.resident)
        t.clients;
      (match !best with Some (c, _) -> c | None -> assert false)
  | Inverse_lottery ->
      let total = total_tickets t in
      let weights = List.map (fun c -> (c, inverse_weight t total c)) t.clients in
      let sum = List.fold_left (fun a (_, w) -> a +. w) 0. weights in
      assert (sum > 0.);
      let r = Rng.float_unit t.rng *. sum in
      let rec go acc = function
        | [] -> assert false
        | [ (c, _) ] -> c
        | (c, w) :: rest ->
            let acc = acc +. w in
            if w > 0. && acc > r then c else go acc rest
      in
      go 0. weights

let access t c vpage =
  if vpage < 0 || vpage >= c.working_set then
    invalid_arg "Inverse_memory.access: page outside working set";
  c.accesses <- c.accesses + 1;
  t.clock <- t.clock + 1;
  if Hashtbl.mem c.resident vpage then begin
    Hashtbl.replace c.resident vpage t.clock;
    `Hit
  end
  else begin
    c.faults <- c.faults + 1;
    if t.used >= t.frames then begin
      let victim = pick_victim t in
      match t.pol with
      | Global_random -> evict_random_of t victim
      | Global_lru | Inverse_lottery -> evict_lru_of t victim
    end;
    Hashtbl.replace c.resident vpage t.clock;
    t.used <- t.used + 1;
    `Fault
  end

type pattern = Uniform | Zipf of float

(* Zipf sampling by inversion over precomputed cumulative weights. *)
let zipf_sampler s n =
  let weights = Array.init n (fun r -> 1. /. (float_of_int (r + 1) ** s)) in
  let cumulative = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  let total = !acc in
  fun rng ->
    let u = Rng.float_unit rng *. total in
    (* binary search for the first cumulative weight above u *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo

let[@warning "-16"] simulate ?(pattern = Uniform) t ~steps =
  let clients = Array.of_list (List.rev t.clients) in
  if Array.length clients = 0 then invalid_arg "Inverse_memory.simulate: no clients";
  let samplers =
    Array.map
      (fun c ->
        match pattern with
        | Uniform -> fun rng -> Rng.int_below rng c.working_set
        | Zipf s ->
            if s <= 0. then invalid_arg "Inverse_memory.simulate: zipf s <= 0";
            zipf_sampler s c.working_set)
      clients
  in
  for i = 0 to steps - 1 do
    let idx = i mod Array.length clients in
    let c = clients.(idx) in
    ignore (access t c (samplers.(idx) t.rng))
  done

let resident _t c = Hashtbl.length c.resident
let faults _t c = c.faults
let accesses _t c = c.accesses
let evictions_suffered _t c = c.evictions
let frames_total t = t.frames
let frames_free t = t.frames - t.used
