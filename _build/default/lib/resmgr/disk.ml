module Rng = Lotto_prng.Rng

type policy = Fcfs | Sstf | Lottery

type request = { cylinder : int; submitted_at : int; seq : int }

type client = {
  name : string;
  mutable tickets : int;
  mutable queue : request list; (* arrival order *)
  mutable served : int;
  mutable latency_sum : int;
}

type t = {
  pol : policy;
  cylinders : int;
  seek_cost : int;
  transfer_cost : int;
  rng : Rng.t;
  mutable clients : client list;
  mutable head : int;
  mutable clock : int;
  mutable seq : int;
  mutable total_served : int;
  mutable seek_distance : int;
}

let[@warning "-16"] create ?(policy = Lottery) ?(cylinders = 1000) ?(seek_cost = 10)
    ?(transfer_cost = 2000) ~rng () =
  if cylinders <= 0 then invalid_arg "Disk.create: cylinders <= 0";
  if seek_cost < 0 || transfer_cost <= 0 then invalid_arg "Disk.create: bad costs";
  {
    pol = policy;
    cylinders;
    seek_cost;
    transfer_cost;
    rng;
    clients = [];
    head = 0;
    clock = 0;
    seq = 0;
    total_served = 0;
    seek_distance = 0;
  }

let policy t = t.pol

let add_client t ~name ~tickets =
  if tickets < 0 then invalid_arg "Disk.add_client: negative tickets";
  let c = { name; tickets; queue = []; served = 0; latency_sum = 0 } in
  t.clients <- t.clients @ [ c ];
  c

let set_tickets _t c tickets =
  if tickets < 0 then invalid_arg "Disk.set_tickets: negative tickets";
  c.tickets <- tickets

let client_name c = c.name

let submit t c ~cylinder =
  if cylinder < 0 || cylinder >= t.cylinders then
    invalid_arg "Disk.submit: cylinder out of range";
  let r = { cylinder; submitted_at = t.clock; seq = t.seq } in
  t.seq <- t.seq + 1;
  c.queue <- c.queue @ [ r ]

let pending _t c = List.length c.queue

let backlogged t = List.filter (fun c -> c.queue <> []) t.clients

let nearest_request t c =
  match c.queue with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun (best : request) (r : request) ->
             if abs (r.cylinder - t.head) < abs (best.cylinder - t.head) then r
             else best)
           first rest)

let oldest_request c =
  match c.queue with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun (best : request) (r : request) ->
             if r.seq < best.seq then r else best)
           first rest)

(* choose (client, request) per policy *)
let choose t : (client * request) option =
  match backlogged t with
  | [] -> None
  | candidates -> (
      match t.pol with
      | Fcfs ->
          (* globally oldest request *)
          List.fold_left
            (fun acc c ->
              match (acc, oldest_request c) with
              | None, Some r -> Some (c, r)
              | Some (_, rb), Some r when r.seq < rb.seq -> Some (c, r)
              | acc, _ -> acc)
            None candidates
      | Sstf ->
          (* globally nearest request to the head *)
          List.fold_left
            (fun acc c ->
              match (acc, nearest_request t c) with
              | None, Some r -> Some (c, r)
              | Some (_, rb), Some r
                when abs (r.cylinder - t.head) < abs (rb.cylinder - t.head) ->
                  Some (c, r)
              | acc, _ -> acc)
            None candidates
      | Lottery -> (
          (* lottery over backlogged clients' tickets, then the winner's
             nearest request (good local seeks, proportional global share) *)
          let total = List.fold_left (fun acc c -> acc + c.tickets) 0 candidates in
          let winner =
            if total = 0 then List.hd candidates
            else begin
              let r = Rng.int_below t.rng total in
              let rec walk acc = function
                | [] -> assert false
                | [ c ] -> c
                | c :: rest ->
                    let acc = acc + c.tickets in
                    if r < acc then c else walk acc rest
              in
              walk 0 candidates
            end
          in
          match nearest_request t winner with
          | Some r -> Some (winner, r)
          | None -> None))

let serve_one t =
  match choose t with
  | None -> None
  | Some (c, r) ->
      let distance = abs (r.cylinder - t.head) in
      t.seek_distance <- t.seek_distance + distance;
      t.clock <- t.clock + (distance * t.seek_cost) + t.transfer_cost;
      t.head <- r.cylinder;
      c.queue <- List.filter (fun (r' : request) -> r'.seq <> r.seq) c.queue;
      c.served <- c.served + 1;
      c.latency_sum <- c.latency_sum + (t.clock - r.submitted_at);
      t.total_served <- t.total_served + 1;
      Some c

let serve_for t ~ticks =
  let stop_at = t.clock + ticks in
  let continue = ref true in
  while !continue && t.clock < stop_at do
    match serve_one t with None -> continue := false | Some _ -> ()
  done

let now t = t.clock
let served _t c = c.served
let total_served t = t.total_served

let mean_latency _t c =
  if c.served = 0 then nan else float_of_int c.latency_sum /. float_of_int c.served

let total_seek_distance t = t.seek_distance
let head_position t = t.head
