lib/resmgr/disk.mli: Lotto_prng
