lib/resmgr/switch.mli: Lotto_prng
