lib/resmgr/disk.ml: List Lotto_prng
