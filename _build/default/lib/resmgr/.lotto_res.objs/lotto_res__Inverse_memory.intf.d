lib/resmgr/inverse_memory.mli: Lotto_prng
