lib/resmgr/inverse_memory.ml: Array Float Hashtbl List Lotto_prng
