lib/resmgr/switch.ml: Array List Lotto_prng Queue
