lib/resmgr/io_bandwidth.ml: List Lotto_prng
