lib/resmgr/io_bandwidth.mli: Lotto_prng
