(** Proportional-share physical-page management via inverse lotteries
    (paper §6.2).

    When a page fault finds all frames in use, a {e victim client} is chosen
    by an inverse lottery: client [i] loses with probability proportional to
    [(1 - t_i / T) * (frames_i / frames_total)] — fewer tickets and larger
    residency both make revocation more likely. The victim then evicts its
    own least-recently-used page. Two conventional baselines are provided
    for comparison: global LRU (ticket-blind) and random victim. *)

type policy =
  | Inverse_lottery  (** the paper's policy *)
  | Global_lru  (** evict the globally least-recently-used page *)
  | Global_random  (** evict a uniformly random resident page *)

type t
type client

val create :
  ?policy:policy -> frames:int -> rng:Lotto_prng.Rng.t -> unit -> t
(** [policy] defaults to [Inverse_lottery]; [frames] is the physical pool
    size. *)

val policy : t -> policy

val add_client : t -> name:string -> tickets:int -> working_set:int -> client
(** A client touches virtual pages [0 .. working_set - 1]. *)

val set_tickets : t -> client -> int -> unit
val client_name : client -> string

val access : t -> client -> int -> [ `Hit | `Fault ]
(** Touch one virtual page, faulting it in (possibly evicting) if needed.
    Raises [Invalid_argument] if the page is outside the working set. *)

type pattern =
  | Uniform  (** every page in the working set equally likely *)
  | Zipf of float
      (** rank-skewed locality: page [r] with probability proportional to
          [1/(r+1)^s]; real programs look like [Zipf 0.8..1.2] *)

val simulate : ?pattern:pattern -> t -> steps:int -> unit
(** Drive the pool: clients access pages per [pattern] (default [Uniform]),
    round-robin, so every client applies equal pressure and the
    steady-state residency split reflects the replacement policy alone. *)

val resident : t -> client -> int
(** Frames currently held. *)

val faults : t -> client -> int
val accesses : t -> client -> int
val evictions_suffered : t -> client -> int
val frames_total : t -> int
val frames_free : t -> int
