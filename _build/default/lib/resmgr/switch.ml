module Rng = Lotto_prng.Rng

type circuit = {
  name : string;
  port : int;
  mutable tickets : int;
  mutable rate : float;
  buffer : int Queue.t; (* arrival slot of each buffered cell *)
  mutable delivered : int;
  mutable dropped : int;
  mutable delay_sum : int;
}

type t = {
  ports : int;
  capacity : int;
  rng : Rng.t;
  mutable circuits : circuit list;
  mutable slot : int;
  sent_per_port : int array;
}

let[@warning "-16"] create ?(ports = 4) ?(buffer_capacity = 64) ~rng () =
  if ports <= 0 then invalid_arg "Switch.create: ports <= 0";
  if buffer_capacity <= 0 then invalid_arg "Switch.create: buffer_capacity <= 0";
  {
    ports;
    capacity = buffer_capacity;
    rng;
    circuits = [];
    slot = 0;
    sent_per_port = Array.make ports 0;
  }

let add_circuit t ~name ~output_port ~tickets ~rate =
  if output_port < 0 || output_port >= t.ports then
    invalid_arg "Switch.add_circuit: port out of range";
  if tickets < 0 then invalid_arg "Switch.add_circuit: negative tickets";
  if rate < 0. || rate > 1. then invalid_arg "Switch.add_circuit: rate not in [0,1]";
  let c =
    {
      name;
      port = output_port;
      tickets;
      rate;
      buffer = Queue.create ();
      delivered = 0;
      dropped = 0;
      delay_sum = 0;
    }
  in
  t.circuits <- t.circuits @ [ c ];
  c

let set_tickets _t c tickets =
  if tickets < 0 then invalid_arg "Switch.set_tickets: negative tickets";
  c.tickets <- tickets

let set_rate _t c rate =
  if rate < 0. || rate > 1. then invalid_arg "Switch.set_rate: rate not in [0,1]";
  c.rate <- rate

let circuit_name c = c.name

let arrivals t =
  List.iter
    (fun c ->
      if c.rate > 0. && Rng.float_unit t.rng < c.rate then begin
        if Queue.length c.buffer >= t.capacity then c.dropped <- c.dropped + 1
        else Queue.push t.slot c.buffer
      end)
    t.circuits

let transmit_port t port =
  let contenders =
    List.filter (fun c -> c.port = port && not (Queue.is_empty c.buffer)) t.circuits
  in
  match contenders with
  | [] -> ()
  | _ ->
      let total = List.fold_left (fun acc c -> acc + c.tickets) 0 contenders in
      let winner =
        if total = 0 then List.hd contenders
        else begin
          let r = Rng.int_below t.rng total in
          let rec walk acc = function
            | [] -> assert false
            | [ c ] -> c
            | c :: rest ->
                let acc = acc + c.tickets in
                if r < acc then c else walk acc rest
          in
          walk 0 contenders
        end
      in
      let arrived = Queue.pop winner.buffer in
      winner.delivered <- winner.delivered + 1;
      winner.delay_sum <- winner.delay_sum + (t.slot - arrived);
      t.sent_per_port.(port) <- t.sent_per_port.(port) + 1

let step t ~slots =
  for _ = 1 to slots do
    arrivals t;
    for port = 0 to t.ports - 1 do
      transmit_port t port
    done;
    t.slot <- t.slot + 1
  done

let now t = t.slot
let delivered _t c = c.delivered
let dropped _t c = c.dropped
let backlog _t c = Queue.length c.buffer

let mean_delay _t c =
  if c.delivered = 0 then nan
  else float_of_int c.delay_sum /. float_of_int c.delivered

let port_utilization t port =
  if port < 0 || port >= t.ports then invalid_arg "Switch.port_utilization: bad port";
  if t.slot = 0 then 0.
  else float_of_int t.sent_per_port.(port) /. float_of_int t.slot
