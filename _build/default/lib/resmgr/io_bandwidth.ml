module Rng = Lotto_prng.Rng

type client = {
  name : string;
  mutable tickets : int;
  mutable pending : int;
  mutable served : int;
}

type t = { rng : Rng.t; mutable clients : client list; mutable total_served : int }

let create ~rng () = { rng; clients = []; total_served = 0 }

let add_client t ~name ~tickets =
  if tickets < 0 then invalid_arg "Io_bandwidth.add_client: negative tickets";
  let c = { name; tickets; pending = 0; served = 0 } in
  t.clients <- t.clients @ [ c ];
  c

let set_tickets _t c tickets =
  if tickets < 0 then invalid_arg "Io_bandwidth.set_tickets: negative";
  c.tickets <- tickets

let client_name c = c.name

let submit _t c ~requests =
  if requests < 0 then invalid_arg "Io_bandwidth.submit: negative requests";
  c.pending <- c.pending + requests

let pending _t c = c.pending
let cancel_pending _t c = c.pending <- 0

let serve_slot t =
  let backlogged = List.filter (fun c -> c.pending > 0) t.clients in
  let total = List.fold_left (fun acc c -> acc + c.tickets) 0 backlogged in
  let winner =
    if total = 0 then
      (* all backlogged clients are unfunded: serve FIFO by creation order *)
      match backlogged with [] -> None | c :: _ -> Some c
    else begin
      let r = Rng.int_below t.rng total in
      let rec go acc = function
        | [] -> None
        | [ c ] -> Some c
        | c :: rest ->
            let acc = acc + c.tickets in
            if r < acc then Some c else go acc rest
      in
      go 0 backlogged
    end
  in
  match winner with
  | None -> None
  | Some c ->
      c.pending <- c.pending - 1;
      c.served <- c.served + 1;
      t.total_served <- t.total_served + 1;
      Some c

let serve t ~slots =
  let continue = ref true in
  let i = ref 0 in
  while !continue && !i < slots do
    (match serve_slot t with None -> continue := false | Some _ -> ());
    incr i
  done

let served _t c = c.served
let total_served t = t.total_served
