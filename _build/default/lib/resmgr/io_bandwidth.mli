(** Lottery-managed I/O / network bandwidth (paper §6, "Managing Diverse
    Resources": disk bandwidth, ATM virtual circuits).

    A device serves fixed-size transfer slots. Each slot, a lottery is held
    among clients with queued requests, weighted by their tickets — so each
    {e backlogged} client receives bandwidth proportional to its share of
    the backlogged tickets, and idle clients' shares redistribute
    automatically (the "lightly contended resource" property of §2.1). *)

type t
type client

val create : rng:Lotto_prng.Rng.t -> unit -> t
val add_client : t -> name:string -> tickets:int -> client
val set_tickets : t -> client -> int -> unit
val client_name : client -> string

val submit : t -> client -> requests:int -> unit
(** Enqueue transfer requests (one slot each). *)

val pending : t -> client -> int

val cancel_pending : t -> client -> unit
(** Drop all of the client's queued requests (the stream went idle). *)

val serve_slot : t -> client option
(** Serve one slot: the lottery winner's oldest request completes. [None]
    when no requests are queued anywhere. *)

val serve : t -> slots:int -> unit
(** Serve up to [slots] slots (stops early if the device goes idle). *)

val served : t -> client -> int
val total_served : t -> int
