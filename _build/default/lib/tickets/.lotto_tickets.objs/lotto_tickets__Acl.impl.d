lib/tickets/acl.ml: Funding Hashtbl List Printf
