lib/tickets/funding.ml: Buffer Format Hashtbl List Printf
