lib/tickets/funding.mli: Format
