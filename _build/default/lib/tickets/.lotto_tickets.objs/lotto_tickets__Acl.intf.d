lib/tickets/acl.mli: Funding
