(** Currency protection (paper §4.7: "A complete lottery scheduling system
    should protect currencies by using access control lists or Unix-style
    permissions based on user and group membership." — left unimplemented
    in the Mach prototype, implemented here).

    Each currency has an owner and an access-control list granting named
    principals individual permissions. The owner implicitly holds every
    permission; newly created currencies belong to their creator; the base
    currency belongs to ["root"]. Guarded operations mirror the {!Funding}
    API but check the acting principal and return [Error reason] instead of
    mutating.

    Permissions (per currency):
    - [Issue]: create tickets denominated in the currency — the paper's
      inflation permission ("which principals have permission to inflate it
      by creating new tickets"); also required to destroy or resize them;
    - [Fund]: attach a backing ticket to the currency (receive funding);
    - [Manage]: edit the ACL, transfer ownership, remove the currency. *)

type principal = string
type perm = Issue | Fund | Manage

type t

val create : Funding.system -> t
(** Wrap a funding system; the base currency is registered to ["root"].
    Unguarded [Funding] mutations remain possible for code holding the raw
    system — protection applies to everything routed through this
    module. *)

val system : t -> Funding.system

(** {1 Ownership and ACLs} *)

val owner : t -> Funding.currency -> principal
(** Raises [Not_found] for currencies created behind the ACL's back. *)

val make_currency :
  t -> as_:principal -> name:string -> (Funding.currency, string) result
(** Anyone may create a currency; the creator becomes its owner. *)

val chown :
  t -> as_:principal -> Funding.currency -> principal -> (unit, string) result
(** Requires [Manage]. *)

val grant :
  t -> as_:principal -> Funding.currency -> principal -> perm -> (unit, string) result

val revoke_perm :
  t -> as_:principal -> Funding.currency -> principal -> perm -> (unit, string) result

val allowed : t -> principal -> Funding.currency -> perm -> bool
(** Owner of the currency, or explicitly granted. *)

val grants : t -> Funding.currency -> (principal * perm) list
(** Explicit grants, most recent first (owner not listed). *)

(** {1 Guarded operations} *)

val issue :
  t ->
  as_:principal ->
  currency:Funding.currency ->
  amount:int ->
  (Funding.ticket, string) result
(** Requires [Issue] on the denomination (inflation control). *)

val fund :
  t ->
  as_:principal ->
  ticket:Funding.ticket ->
  currency:Funding.currency ->
  (unit, string) result
(** Requires [Issue] on the ticket's denomination (it is that currency's
    value being committed) and [Fund] on the receiving currency. *)

val unfund : t -> as_:principal -> Funding.ticket -> (unit, string) result
(** Requires [Issue] on the ticket's denomination. *)

val set_amount :
  t -> as_:principal -> Funding.ticket -> int -> (unit, string) result
(** Inflation/deflation of an existing ticket: requires [Issue] on its
    denomination. *)

val destroy_ticket : t -> as_:principal -> Funding.ticket -> (unit, string) result

val remove_currency :
  t -> as_:principal -> Funding.currency -> (unit, string) result
(** Requires [Manage]; same structural constraints as
    {!Funding.remove_currency}. *)
