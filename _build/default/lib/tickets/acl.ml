type principal = string
type perm = Issue | Fund | Manage

type centry = {
  mutable owner : principal;
  mutable grants : (principal * perm) list; (* most recent first *)
}

type t = {
  sys : Funding.system;
  entries : (int, centry) Hashtbl.t; (* currency id -> acl *)
}

let register t currency ~owner =
  Hashtbl.replace t.entries (Funding.currency_id currency) { owner; grants = [] }

let create sys =
  let t = { sys; entries = Hashtbl.create 16 } in
  register t (Funding.base sys) ~owner:"root";
  t

let system t = t.sys

let entry t currency =
  match Hashtbl.find_opt t.entries (Funding.currency_id currency) with
  | Some e -> e
  | None -> raise Not_found

let owner t currency = (entry t currency).owner

let allowed t principal currency perm =
  match Hashtbl.find_opt t.entries (Funding.currency_id currency) with
  | None -> false
  | Some e ->
      e.owner = principal
      || List.exists (fun (p, q) -> p = principal && q = perm) e.grants

let grants t currency = (entry t currency).grants

let perm_name = function Issue -> "issue" | Fund -> "fund" | Manage -> "manage"

let require t ~as_ currency perm k =
  if allowed t as_ currency perm then k ()
  else
    Error
      (Printf.sprintf "%s: permission %s denied on currency %s" as_
         (perm_name perm)
         (Funding.currency_name currency))

let make_currency t ~as_ ~name =
  match Funding.make_currency t.sys ~name with
  | c ->
      register t c ~owner:as_;
      Ok c
  | exception Funding.Duplicate_name n ->
      Error (Printf.sprintf "currency %s already exists" n)

let chown t ~as_ currency new_owner =
  require t ~as_ currency Manage (fun () ->
      (entry t currency).owner <- new_owner;
      Ok ())

let grant t ~as_ currency principal perm =
  require t ~as_ currency Manage (fun () ->
      let e = entry t currency in
      if not (List.mem (principal, perm) e.grants) then
        e.grants <- (principal, perm) :: e.grants;
      Ok ())

let revoke_perm t ~as_ currency principal perm =
  require t ~as_ currency Manage (fun () ->
      let e = entry t currency in
      e.grants <- List.filter (fun g -> g <> (principal, perm)) e.grants;
      Ok ())

let issue t ~as_ ~currency ~amount =
  require t ~as_ currency Issue (fun () ->
      match Funding.issue t.sys ~currency ~amount with
      | ticket -> Ok ticket
      | exception Invalid_argument m -> Error m)

let fund t ~as_ ~ticket ~currency =
  require t ~as_ (Funding.denomination ticket) Issue (fun () ->
      require t ~as_ currency Fund (fun () ->
          match Funding.fund t.sys ~ticket ~currency with
          | () -> Ok ()
          | exception Funding.Cycle m -> Error ("cycle: " ^ m)
          | exception Invalid_argument m -> Error m))

let unfund t ~as_ ticket =
  require t ~as_ (Funding.denomination ticket) Issue (fun () ->
      match Funding.unfund t.sys ticket with
      | () -> Ok ()
      | exception Invalid_argument m -> Error m)

let set_amount t ~as_ ticket amount =
  require t ~as_ (Funding.denomination ticket) Issue (fun () ->
      match Funding.set_amount t.sys ticket amount with
      | () -> Ok ()
      | exception Invalid_argument m -> Error m)

let destroy_ticket t ~as_ ticket =
  require t ~as_ (Funding.denomination ticket) Issue (fun () ->
      match Funding.destroy_ticket t.sys ticket with
      | () -> Ok ()
      | exception Invalid_argument m -> Error m)

let remove_currency t ~as_ currency =
  require t ~as_ currency Manage (fun () ->
      match Funding.remove_currency t.sys currency with
      | () ->
          Hashtbl.remove t.entries (Funding.currency_id currency);
          Ok ()
      | exception Funding.In_use m -> Error m)
