(** Decay-usage timesharing scheduler, modelling the standard Mach/BSD
    policy the paper's prototype coexists with and is benchmarked against
    (Sections 1, 5.6, 7).

    Each thread accumulates CPU usage; usage decays exponentially with a
    configurable half-life, and the runnable thread with the least decayed
    usage runs next (ties broken FIFO). This reproduces the qualitative
    behaviour the paper ascribes to decay-usage schedulers: approximate
    equal shares for steady compute-bound loads, responsiveness for
    I/O-bound threads, and {e no} means of expressing relative shares. *)

type t

val create : ?half_life:Lotto_sim.Time.t -> unit -> t
(** [half_life] of the usage decay, default 2 s. *)

val sched : t -> Lotto_sim.Types.sched
val usage : t -> Lotto_sim.Types.thread -> float
(** Current decayed usage estimate (ticks). *)
