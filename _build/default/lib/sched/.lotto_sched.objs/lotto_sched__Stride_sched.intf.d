lib/sched/stride_sched.mli: Lotto_sim
