lib/sched/lottery_sched.ml: Hashtbl List Lotto_draw Lotto_prng Lotto_sim Lotto_tickets Printf
