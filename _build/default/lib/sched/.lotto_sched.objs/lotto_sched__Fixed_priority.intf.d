lib/sched/fixed_priority.mli: Lotto_sim
