lib/sched/stride_sched.ml: Hashtbl Lotto_sim
