lib/sched/round_robin.mli: Lotto_sim
