lib/sched/decay_usage.mli: Lotto_sim
