lib/sched/fixed_priority.ml: Hashtbl List Lotto_sim
