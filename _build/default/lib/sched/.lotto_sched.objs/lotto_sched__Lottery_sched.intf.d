lib/sched/lottery_sched.mli: Lotto_prng Lotto_sim Lotto_tickets
