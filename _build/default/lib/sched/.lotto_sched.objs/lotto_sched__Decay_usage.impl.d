lib/sched/decay_usage.ml: Hashtbl Lotto_sim Option
