lib/sched/round_robin.ml: Hashtbl Lotto_sim Queue
