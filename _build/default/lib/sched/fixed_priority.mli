(** Fixed-priority scheduler with optional priority inheritance.

    The conventional absolute-priority policy the paper argues against
    (Section 7): higher priority always preempts lower, equal priorities run
    round-robin. With [inheritance] enabled, the kernel's donate/revoke
    callbacks (RPC and mutex blocking) boost the target to the donor's
    effective priority, the classic cure for priority inversion [Sha90]
    that the paper compares its ticket transfers to. *)

type t

val create : ?inheritance:bool -> unit -> t
(** [inheritance] defaults to [false]. *)

val sched : t -> Lotto_sim.Types.sched

val set_priority : t -> Lotto_sim.Types.thread -> int -> unit
(** Higher values run first; the default priority is [0]. *)

val priority : t -> Lotto_sim.Types.thread -> int
(** Base (not inherited) priority. *)

val effective_priority : t -> Lotto_sim.Types.thread -> int
