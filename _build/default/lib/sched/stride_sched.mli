(** Stride scheduling: the deterministic proportional-share counterpart of
    lottery scheduling (Waldspurger's follow-up work, foreshadowed by the
    paper's observation that randomization trades short-term accuracy for
    simplicity).

    Each thread advances a virtual "pass" by [stride1 / tickets] per quantum
    consumed; the runnable thread with the minimum pass runs next. Over any
    interval the allocation error is bounded by a single quantum, versus the
    lottery's O(sqrt(n_allocations)) binomial error — the ablation benchmark
    contrasts the two. *)

type t

val create : unit -> t
val sched : t -> Lotto_sim.Types.sched

val set_tickets : t -> Lotto_sim.Types.thread -> int -> unit
(** Default allocation is 1 ticket; must be positive. *)

val tickets : t -> Lotto_sim.Types.thread -> int
val pass : t -> Lotto_sim.Types.thread -> float
