(** Round-robin scheduler: equal time slices in arrival order. The simplest
    baseline; matches how unmodified Mach runs equal-priority threads
    (paper §5.6 footnote). *)

type t

val create : unit -> t
val sched : t -> Lotto_sim.Types.sched
val selections : t -> int
(** Number of [select] calls served (for overhead accounting). *)
