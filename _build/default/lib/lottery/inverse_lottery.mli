(** Inverse lotteries (Section 6.2): select a {e loser} to relinquish a
    resource unit, with probability {e decreasing} in ticket holdings.

    With [n] clients holding [t_i] of [T] total tickets, client [i] loses
    with probability [(1 / (n - 1)) * (1 - t_i / T)] — the paper's formula,
    where [1 / (n - 1)] normalizes the probabilities to sum to one. *)

type 'a t
type 'a handle

val create : unit -> 'a t
val add : 'a t -> client:'a -> tickets:float -> 'a handle
val remove : 'a t -> 'a handle -> unit
val set_tickets : 'a t -> 'a handle -> float -> unit
val tickets : 'a t -> 'a handle -> float
val client : 'a handle -> 'a
val size : 'a t -> int
val total_tickets : 'a t -> float

val loss_probability : 'a t -> 'a handle -> float
(** The paper's [(1/(n-1)) * (1 - t_i/T)]; [0.] when fewer than two
    clients. *)

val draw_loser : 'a t -> Lotto_prng.Rng.t -> 'a handle option
(** [None] when fewer than two clients compete (a single client would have
    loss probability 0/0; the caller decides what to do). *)

val draw_loser_weighted :
  'a t -> Lotto_prng.Rng.t -> extra:('a -> float) -> 'a handle option
(** Inverse lottery with an additional multiplicative weight per client —
    the paper's page-replacement policy multiplies [1 - t_i/T] by the
    fraction of physical memory the client uses. Clients with zero [extra]
    weight are never selected. *)
