lib/lottery/tree_lottery.ml: Array Lotto_prng Option
