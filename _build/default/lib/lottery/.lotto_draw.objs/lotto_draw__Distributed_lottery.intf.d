lib/lottery/distributed_lottery.mli: Lotto_prng
