lib/lottery/distributed_lottery.ml: Array Float List_lottery Lotto_prng
