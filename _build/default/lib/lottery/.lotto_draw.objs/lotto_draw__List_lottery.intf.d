lib/lottery/list_lottery.mli: Lotto_prng
