lib/lottery/inverse_lottery.ml: List Lotto_prng
