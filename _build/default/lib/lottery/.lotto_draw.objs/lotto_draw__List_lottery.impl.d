lib/lottery/list_lottery.ml: List Lotto_prng Option
