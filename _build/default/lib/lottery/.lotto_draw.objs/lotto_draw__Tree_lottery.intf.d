lib/lottery/tree_lottery.mli: Lotto_prng
