lib/lottery/inverse_lottery.mli: Lotto_prng
