(** Distributed lottery sketch (§4.2: "Such a tree-based implementation can
    also be used as the basis of a distributed lottery scheduler").

    Clients live on [nodes] separate nodes; a binary tree of partial ticket
    sums spans the nodes. A draw walks the tree from the root to the owning
    node (one simulated {e message} per hop) and finishes with a local
    lottery there; weight updates propagate from a node's leaf to the root.
    Selection remains exactly ticket-proportional across the whole system
    while every draw and update costs O(log nodes) messages — the counters
    let tests and benches verify the bound. *)

type 'a t
type 'a handle

val create : nodes:int -> unit -> 'a t
(** [nodes] is rounded up to a power of two; must be positive. *)

val nodes : 'a t -> int

val add : 'a t -> node:int -> client:'a -> weight:float -> 'a handle
(** Register a client on a node (0-based). *)

val remove : 'a t -> 'a handle -> unit
val set_weight : 'a t -> 'a handle -> float -> unit
val node_of : 'a handle -> int
val client : 'a handle -> 'a
val total : 'a t -> float
val node_total : 'a t -> int -> float

val draw : 'a t -> Lotto_prng.Rng.t -> 'a option
(** [None] when no client holds positive weight. *)

val draws : 'a t -> int
val messages : 'a t -> int
(** Cumulative simulated messages (tree hops) across all draws and
    updates. *)
