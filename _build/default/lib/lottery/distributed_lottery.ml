type 'a handle = { node : int; local : 'a List_lottery.handle; mutable live : bool }

type 'a t = {
  node_count : int; (* power of two *)
  sums : float array; (* 1-based binary tree over nodes; leaf i at node_count + i *)
  locals : 'a List_lottery.t array;
  mutable draws : int;
  mutable messages : int;
}

let create ~nodes () =
  if nodes <= 0 then invalid_arg "Distributed_lottery.create: nodes <= 0";
  let rec up c = if c >= nodes then c else up (c * 2) in
  let node_count = up 1 in
  {
    node_count;
    sums = Array.make (2 * node_count) 0.;
    locals = Array.init node_count (fun _ -> List_lottery.create ~order:Unordered ());
    draws = 0;
    messages = 0;
  }

let nodes t = t.node_count

(* propagate a weight delta from a node's leaf to the root, one message per
   level (the update path of the distributed tree) *)
let bubble_up t node delta =
  let i = ref (t.node_count + node) in
  while !i >= 1 do
    t.sums.(!i) <- t.sums.(!i) +. delta;
    if !i > 1 then t.messages <- t.messages + 1;
    i := !i / 2
  done

let check_node t node =
  if node < 0 || node >= t.node_count then
    invalid_arg "Distributed_lottery: node out of range"

let add t ~node ~client ~weight =
  check_node t node;
  let local = List_lottery.add t.locals.(node) ~client ~weight in
  bubble_up t node weight;
  { node; local; live = true }

let remove t h =
  if h.live then begin
    h.live <- false;
    let w = List_lottery.weight t.locals.(h.node) h.local in
    List_lottery.remove t.locals.(h.node) h.local;
    bubble_up t h.node (-.w)
  end

let set_weight t h weight =
  if not h.live then invalid_arg "Distributed_lottery.set_weight: removed handle";
  let old = List_lottery.weight t.locals.(h.node) h.local in
  List_lottery.set_weight t.locals.(h.node) h.local weight;
  bubble_up t h.node (weight -. old)

let node_of h = h.node
let client h = List_lottery.client h.local
let total t = Float.max 0. t.sums.(1)

let node_total t node =
  check_node t node;
  Float.max 0. t.sums.(t.node_count + node)

let draw t rng =
  t.draws <- t.draws + 1;
  if total t <= 0. then None
  else begin
    let winning = ref (Lotto_prng.Rng.float_unit rng *. total t) in
    (* descend the inter-node tree; each hop is a message *)
    let i = ref 1 in
    while !i < t.node_count do
      let left = 2 * !i in
      if !winning < t.sums.(left) || t.sums.(left + 1) <= 0. then i := left
      else begin
        winning := !winning -. t.sums.(left);
        i := left + 1
      end;
      t.messages <- t.messages + 1
    done;
    let node = !i - t.node_count in
    (* final local lottery on the owning node (clamped for float drift) *)
    let local = t.locals.(node) in
    let w = Float.min !winning (Float.max 0. (List_lottery.total local -. 1e-9)) in
    match List_lottery.draw_with_value local ~winning:(Float.max 0. w) with
    | Some h -> Some (List_lottery.client h)
    | None -> None
  end

let draws t = t.draws
let messages t = t.messages
