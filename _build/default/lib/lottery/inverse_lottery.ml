type 'a handle = { mutable tickets : float; c : 'a; mutable live : bool }

type 'a t = { mutable entries : 'a handle list; mutable size : int }

let create () = { entries = []; size = 0 }

let add t ~client ~tickets =
  if tickets < 0. then invalid_arg "Inverse_lottery.add: negative tickets";
  let h = { tickets; c = client; live = true } in
  t.entries <- h :: t.entries;
  t.size <- t.size + 1;
  h

let remove t h =
  if h.live then begin
    h.live <- false;
    t.entries <- List.filter (fun e -> e != h) t.entries;
    t.size <- t.size - 1
  end

let set_tickets _t h tickets =
  if tickets < 0. then invalid_arg "Inverse_lottery.set_tickets: negative";
  if not h.live then invalid_arg "Inverse_lottery.set_tickets: removed handle";
  h.tickets <- tickets

let tickets _t h = h.tickets
let client h = h.c
let size t = t.size

let total_tickets t =
  List.fold_left (fun acc h -> acc +. h.tickets) 0. t.entries

let inverse_weight t h =
  let total = total_tickets t in
  if total <= 0. then 1. else 1. -. (h.tickets /. total)

let loss_probability t h =
  if t.size < 2 then 0.
  else inverse_weight t h /. float_of_int (t.size - 1)

let weighted_pick t rng weight_of =
  let total = List.fold_left (fun acc h -> acc +. weight_of h) 0. t.entries in
  if total <= 0. then None
  else begin
    let winning = Lotto_prng.Rng.float_unit rng *. total in
    let rec go acc last = function
      | [] -> last
      | h :: rest ->
          let w = weight_of h in
          let acc = acc +. w in
          let last = if w > 0. then Some h else last in
          if w > 0. && acc > winning then Some h else go acc last rest
    in
    go 0. None t.entries
  end

let draw_loser t rng =
  if t.size < 2 then None else weighted_pick t rng (inverse_weight t)

let draw_loser_weighted t rng ~extra =
  if t.size < 2 then None
  else weighted_pick t rng (fun h -> inverse_weight t h *. extra h.c)
