(** Basic descriptive statistics over float arrays and lists.

    All functions raise [Invalid_argument] on empty input unless stated
    otherwise. Welford-style running statistics are provided by {!Running}
    for single-pass accumulation. *)

val mean : float array -> float
(** Arithmetic mean. *)

val variance : float array -> float
(** Unbiased sample variance (divides by [n - 1]); [0.] for singletons. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val coefficient_of_variation : float array -> float
(** [stddev / mean]. Raises [Invalid_argument] if the mean is zero. *)

val minimum : float array -> float
val maximum : float array -> float

val median : float array -> float
(** Median (average of the two middle elements for even sizes). Does not
    mutate its argument. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0., 100.], linear interpolation between
    closest ranks. Does not mutate its argument. *)

val sum : float array -> float
(** Kahan-compensated sum; [0.] on empty input. *)

val mean_list : float list -> float
val stddev_list : float list -> float

(** Single-pass running mean/variance (Welford's algorithm). *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** [0.] before any sample. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two samples. *)

  val stddev : t -> float

  val stderr_of_mean : t -> float
  (** Standard error of the mean, [stddev / sqrt count]; [infinity] before
      the second sample. *)
end

val linear_fit : (float * float) array -> float * float
(** Least-squares fit [y = a + b * x]; returns [(a, b)]. Raises
    [Invalid_argument] on fewer than two points or zero x-variance. *)

val ratio_error : observed:float -> expected:float -> float
(** Relative error [|observed - expected| / expected]. *)
