(** Fixed-width bucket histograms, used for waiting-time distributions
    (paper Figure 11) and for distribution checks in tests. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** [create ~lo ~hi ~buckets] covers the half-open range [\[lo, hi)] with
    [buckets] equal-width buckets. Samples outside the range are counted in
    underflow/overflow counters. Raises [Invalid_argument] if [hi <= lo] or
    [buckets <= 0]. *)

val add : t -> float -> unit
val total : t -> int
(** Total samples added, including under/overflow. *)

val count : t -> int -> int
(** [count t i] is the number of samples in bucket [i]. *)

val buckets : t -> int
val underflow : t -> int
val overflow : t -> int

val bucket_mid : t -> int -> float
(** Midpoint value of bucket [i]. *)

val bucket_range : t -> int -> float * float

val fraction : t -> int -> float
(** Share of all samples landing in bucket [i]; [0.] when empty. *)

val mode : t -> int
(** Index of the fullest bucket (ties resolve to the lowest index). *)

val pp : Format.formatter -> t -> unit
(** Renders an ASCII bar chart, one row per bucket. *)

val render : ?width:int -> t -> string
(** [render] the ASCII chart to a string; [width] caps the bar length
    (default 50 characters). *)
