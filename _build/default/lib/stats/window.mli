(** Windowed time-series recorders.

    Experiments bin events (iterations completed, frames displayed, queries
    answered) into fixed-width virtual-time windows, mirroring the paper's
    figures ("average iterations over a series of 8 second windows",
    cumulative trials over time, …). Time is an abstract [int] tick count. *)

(** Per-window event counter. *)
module Counter : sig
  type t

  val create : width:int -> t
  (** [create ~width] bins events into windows of [width] ticks starting at
      time 0. Raises [Invalid_argument] if [width <= 0]. *)

  val record : t -> time:int -> count:int -> unit
  (** Add [count] events at [time]. Events may arrive out of order. *)

  val bump : t -> time:int -> unit
  (** [record ~count:1]. *)

  val windows : t -> upto:int -> int array
  (** Counts per window for every window that ends at or before [upto]
      (zero-filled for empty windows). *)

  val rates : t -> upto:int -> per:int -> float array
  (** Per-window counts rescaled to events per [per] ticks. *)

  val cumulative : t -> upto:int -> int array
  (** Running totals per window. *)

  val total : t -> int
  val width : t -> int
end

(** Time-stamped scalar samples (e.g. response times). *)
module Series : sig
  type t

  val create : unit -> t
  val record : t -> time:int -> value:float -> unit
  val length : t -> int
  val times : t -> int array
  val values : t -> float array

  val between : t -> lo:int -> hi:int -> float array
  (** Values of samples with [lo <= time < hi], in recording order. *)
end
