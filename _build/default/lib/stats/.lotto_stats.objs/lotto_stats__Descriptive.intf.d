lib/stats/descriptive.mli:
