lib/stats/histogram.ml: Array Buffer Format Printf String
