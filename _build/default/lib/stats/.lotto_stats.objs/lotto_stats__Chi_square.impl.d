lib/stats/chi_square.ml: Array Float
