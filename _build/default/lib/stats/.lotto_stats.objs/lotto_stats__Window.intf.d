lib/stats/window.mli:
