lib/stats/chi_square.mli:
