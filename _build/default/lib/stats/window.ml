module Counter = struct
  type t = {
    width : int;
    mutable counts : int array; (* index = window number *)
    mutable hi_window : int; (* highest window index touched, -1 if none *)
    mutable total : int;
  }

  let create ~width =
    if width <= 0 then invalid_arg "Window.Counter.create: width <= 0";
    { width; counts = Array.make 16 0; hi_window = -1; total = 0 }

  let ensure t w =
    let n = Array.length t.counts in
    if w >= n then begin
      let bigger = Array.make (max (w + 1) (2 * n)) 0 in
      Array.blit t.counts 0 bigger 0 n;
      t.counts <- bigger
    end

  let record t ~time ~count =
    if time < 0 then invalid_arg "Window.Counter.record: negative time";
    let w = time / t.width in
    ensure t w;
    t.counts.(w) <- t.counts.(w) + count;
    if w > t.hi_window then t.hi_window <- w;
    t.total <- t.total + count

  let bump t ~time = record t ~time ~count:1

  let windows t ~upto =
    let n = upto / t.width in
    Array.init n (fun i -> if i < Array.length t.counts then t.counts.(i) else 0)

  let rates t ~upto ~per =
    windows t ~upto
    |> Array.map (fun c -> float_of_int c *. float_of_int per /. float_of_int t.width)

  let cumulative t ~upto =
    let ws = windows t ~upto in
    let acc = ref 0 in
    Array.map
      (fun c ->
        acc := !acc + c;
        !acc)
      ws

  let total t = t.total
  let width t = t.width
end

module Series = struct
  type t = { mutable times : int list; mutable values : float list; mutable n : int }

  let create () = { times = []; values = []; n = 0 }

  let record t ~time ~value =
    t.times <- time :: t.times;
    t.values <- value :: t.values;
    t.n <- t.n + 1

  let length t = t.n
  let times t = Array.of_list (List.rev t.times)
  let values t = Array.of_list (List.rev t.values)

  let between t ~lo ~hi =
    let pairs = List.combine t.times t.values in
    pairs
    |> List.filter (fun (tm, _) -> tm >= lo && tm < hi)
    |> List.rev_map snd
    |> Array.of_list
end
