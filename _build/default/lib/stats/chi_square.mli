(** Pearson chi-square goodness-of-fit testing, used to validate that lottery
    draws follow their ticket-proportional distribution (paper Section 2). *)

val statistic : observed:int array -> expected:float array -> float
(** Pearson statistic [sum ((o - e)^2 / e)]. Raises [Invalid_argument] on
    length mismatch, empty input, or a nonpositive expected count. *)

val degrees_of_freedom : cells:int -> int
(** [cells - 1]. *)

val p_value : statistic:float -> df:int -> float
(** Upper-tail probability [P(X >= statistic)] for a chi-square distribution
    with [df] degrees of freedom, via the regularized incomplete gamma
    function. Accurate to ~1e-10 over the ranges used here. *)

val test :
  ?alpha:float -> observed:int array -> expected:float array -> unit -> bool
(** [test ~alpha ~observed ~expected ()] is [true] when the fit is {e not}
    rejected at significance level [alpha] (default [0.001] — deliberately
    loose so randomized tests are stable across seeds). *)

val goodness_of_fit :
  ?alpha:float -> observed:int array -> weights:float array -> unit -> bool
(** Convenience wrapper: [weights] are unnormalized expected proportions;
    expected counts are derived from the observed total. *)
