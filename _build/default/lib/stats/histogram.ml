type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~buckets =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if buckets <= 0 then invalid_arg "Histogram.create: buckets <= 0";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int buckets;
    counts = Array.make buckets 0;
    under = 0;
    over = 0;
    total = 0;
  }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = min i (Array.length t.counts - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let total t = t.total
let count t i = t.counts.(i)
let buckets t = Array.length t.counts
let underflow t = t.under
let overflow t = t.over
let bucket_mid t i = t.lo +. ((float_of_int i +. 0.5) *. t.width)

let bucket_range t i =
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let fraction t i =
  if t.total = 0 then 0. else float_of_int t.counts.(i) /. float_of_int t.total

let mode t =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
  !best

let render ?(width = 50) t =
  let buf = Buffer.create 256 in
  let peak = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      let bar = c * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "%10.3f | %-*s %d\n" (bucket_mid t i) width
           (String.make bar '#') c))
    t.counts;
  if t.under > 0 then
    Buffer.add_string buf (Printf.sprintf "  underflow: %d\n" t.under);
  if t.over > 0 then
    Buffer.add_string buf (Printf.sprintf "  overflow: %d\n" t.over);
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (render t)
