let statistic ~observed ~expected =
  let n = Array.length observed in
  if n = 0 then invalid_arg "Chi_square.statistic: empty input";
  if Array.length expected <> n then
    invalid_arg "Chi_square.statistic: length mismatch";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let e = expected.(i) in
    if e <= 0. then invalid_arg "Chi_square.statistic: nonpositive expected";
    let d = float_of_int observed.(i) -. e in
    acc := !acc +. (d *. d /. e)
  done;
  !acc

let degrees_of_freedom ~cells = cells - 1

(* Regularized incomplete gamma, lower tail P(a, x), per the classic series /
   continued-fraction split (Numerical Recipes §6.2, which the paper itself
   cites as [Pre88]). *)

let max_iter = 500
let eps = 3e-12
let fpmin = 1e-300

let rec ln_gamma x =
  (* Lanczos approximation. *)
  if x < 0.5 then
    (* reflection formula keeps accuracy for small x *)
    log (Float.pi /. sin (Float.pi *. x)) -. ln_gamma (1. -. x)
  else begin
    let g = 7. in
    let coeffs =
      [|
        0.99999999999980993; 676.5203681218851; -1259.1392167224028;
        771.32342877765313; -176.61502916214059; 12.507343278686905;
        -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
      |]
    in
    let x = x -. 1. in
    let acc = ref coeffs.(0) in
    for i = 1 to 8 do
      acc := !acc +. (coeffs.(i) /. (x +. float_of_int i))
    done;
    let t = x +. g +. 0.5 in
    (0.5 *. log (2. *. Float.pi))
    +. (((x +. 0.5) *. log t) -. t)
    +. log !acc
  end

let gamma_series a x =
  (* Lower incomplete gamma by series expansion; valid for x < a + 1. *)
  let gln = ln_gamma a in
  let ap = ref a in
  let sum = ref (1. /. a) in
  let del = ref !sum in
  let result = ref nan in
  (try
     for _ = 1 to max_iter do
       ap := !ap +. 1.;
       del := !del *. x /. !ap;
       sum := !sum +. !del;
       if abs_float !del < abs_float !sum *. eps then begin
         result := !sum *. exp ((-.x) +. (a *. log x) -. gln);
         raise Exit
       end
     done
   with Exit -> ());
  if Float.is_nan !result then failwith "Chi_square: gamma series diverged";
  !result

let gamma_cont_frac a x =
  (* Upper incomplete gamma by Lentz's continued fraction; valid x >= a+1. *)
  let gln = ln_gamma a in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. fpmin) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  (try
     for i = 1 to max_iter do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.;
       d := (an *. !d) +. !b;
       if abs_float !d < fpmin then d := fpmin;
       c := !b +. (an /. !c);
       if abs_float !c < fpmin then c := fpmin;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if abs_float (del -. 1.) < eps then raise Exit
     done
   with Exit -> ());
  exp ((-.x) +. (a *. log x) -. gln) *. !h

let gammp a x =
  if x < 0. || a <= 0. then invalid_arg "Chi_square.gammp: bad arguments";
  if x = 0. then 0.
  else if x < a +. 1. then gamma_series a x
  else 1. -. gamma_cont_frac a x

let p_value ~statistic ~df =
  if df <= 0 then invalid_arg "Chi_square.p_value: df <= 0";
  if statistic < 0. then invalid_arg "Chi_square.p_value: negative statistic";
  1. -. gammp (float_of_int df /. 2.) (statistic /. 2.)

let test ?(alpha = 0.001) ~observed ~expected () =
  let stat = statistic ~observed ~expected in
  let df = degrees_of_freedom ~cells:(Array.length observed) in
  p_value ~statistic:stat ~df >= alpha

let goodness_of_fit ?alpha ~observed ~weights () =
  let n = Array.length observed in
  if Array.length weights <> n then
    invalid_arg "Chi_square.goodness_of_fit: length mismatch";
  let total_obs = float_of_int (Array.fold_left ( + ) 0 observed) in
  let total_w = Array.fold_left ( +. ) 0. weights in
  if total_w <= 0. then
    invalid_arg "Chi_square.goodness_of_fit: nonpositive weights";
  let expected = Array.map (fun w -> total_obs *. w /. total_w) weights in
  test ?alpha ~observed ~expected ()
