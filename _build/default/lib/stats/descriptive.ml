let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let sum xs =
  (* Kahan summation: experiments accumulate millions of small samples and
     naive summation loses precision on the fairness tolerances we assert. *)
  let total = ref 0. and comp = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  check_nonempty "Descriptive.mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Descriptive.variance" xs;
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = ref 0. in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let coefficient_of_variation xs =
  let m = mean xs in
  if m = 0. then invalid_arg "Descriptive.coefficient_of_variation: zero mean";
  stddev xs /. m

let minimum xs =
  check_nonempty "Descriptive.minimum" xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  check_nonempty "Descriptive.maximum" xs;
  Array.fold_left max xs.(0) xs

let sorted_copy xs =
  let copy = Array.copy xs in
  Array.sort compare copy;
  copy

let median xs =
  check_nonempty "Descriptive.median" xs;
  let s = sorted_copy xs in
  let n = Array.length s in
  if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.

let percentile xs p =
  check_nonempty "Descriptive.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Descriptive.percentile: p out of range";
  let s = sorted_copy xs in
  let n = Array.length s in
  if n = 1 then s.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
  end

let mean_list xs = mean (Array.of_list xs)
let stddev_list xs = stddev (Array.of_list xs)

module Running = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  let stderr_of_mean t =
    if t.n < 2 then infinity else stddev t /. sqrt (float_of_int t.n)
end

let linear_fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Descriptive.linear_fit: need at least two points";
  let sx = ref 0. and sy = ref 0. in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y)
    points;
  let mx = !sx /. float_of_int n and my = !sy /. float_of_int n in
  let sxx = ref 0. and sxy = ref 0. in
  Array.iter
    (fun (x, y) ->
      let dx = x -. mx in
      sxx := !sxx +. (dx *. dx);
      sxy := !sxy +. (dx *. (y -. my)))
    points;
  if !sxx = 0. then invalid_arg "Descriptive.linear_fit: zero x-variance";
  let b = !sxy /. !sxx in
  (my -. (b *. mx), b)

let ratio_error ~observed ~expected =
  if expected = 0. then invalid_arg "Descriptive.ratio_error: zero expected";
  abs_float (observed -. expected) /. expected
