(* Integration tests: scaled-down runs of every paper experiment, asserting
   the qualitative shape the paper reports (who wins, by roughly what
   factor, where the behaviour changes). Durations are reduced; tolerances
   widened accordingly. *)

open Lotto_exp

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let close ?(tol = 0.25) msg expected actual =
  if Float.is_nan actual || abs_float (actual -. expected) > tol *. expected then
    Alcotest.failf "%s: expected ~%.3f (±%.0f%%), got %.3f" msg expected
      (100. *. tol) actual

let test_fig4 () =
  let t = Fig4.run ~seed:41 ~duration:(Lotto_sim.Time.seconds 60) ~runs_per_ratio:2 ~max_ratio:7 () in
  checki "runs recorded" 14 (Array.length t.runs);
  Array.iter
    (fun (r : Fig4.run) ->
      close ~tol:0.35
        (Printf.sprintf "ratio %d" r.allocated)
        (float_of_int r.allocated) r.observed)
    t.runs;
  (* accuracy is good overall: worst relative error across runs *)
  checkb "max error under 35%" true (Fig4.max_relative_error t < 0.35);
  close ~tol:0.2 "20:1 run lands near 20" 20. t.twenty_to_one;
  close ~tol:0.12 "regression slope near 1" 1. t.Fig4.slope

let test_fig5 () =
  let t = Fig5.run ~seed:52 ~duration:(Lotto_sim.Time.seconds 160) () in
  close ~tol:0.12 "overall 2:1" 2. t.overall_ratio;
  let ratios = Fig5.window_ratios t in
  checki "20 windows" 20 (Array.length ratios);
  (* every window stays within a loose band around 2:1 — the paper's "close
     to allocated throughout" *)
  Array.iter
    (fun r -> checkb (Printf.sprintf "window ratio %.2f in [1,4]" r) true (r > 1. && r < 4.))
    ratios

let test_fig6 () =
  let t =
    Fig6.run ~seed:63 ~duration:(Lotto_sim.Time.seconds 300)
      ~stagger:(Lotto_sim.Time.seconds 60) ()
  in
  checki "three tasks" 3 (Array.length t.tasks);
  (* all three estimate pi/4 *)
  Array.iter
    (fun (task : Fig6.task_result) ->
      close ~tol:0.01 (task.name ^ " estimates pi/4") (Float.pi /. 4.)
        task.final_estimate)
    t.tasks;
  (* later tasks catch up: final totals within 40% of each other *)
  checkb
    (Printf.sprintf "converged (spread %.2f)" (Fig6.convergence_spread t))
    true
    (Fig6.convergence_spread t < 0.4);
  (* staggered starts show in the series: mc3 has nothing before its start *)
  let mc3 = t.tasks.(2) in
  let start_window = mc3.start_at / t.window in
  checkb "mc3 idle before start" true
    (Array.for_all (fun c -> c = 0)
       (Array.sub mc3.cumulative 0 (min start_window (Array.length mc3.cumulative))))

let test_fig7 () =
  let t =
    Fig7.run ~seed:74 ~duration:(Lotto_sim.Time.seconds 400)
      ~query_cost:(Lotto_sim.Time.seconds 4) ()
  in
  let a = t.clients.(0) and b = t.clients.(1) and c = t.clients.(2) in
  checki "A completed its 20 queries" 20 a.completions;
  checkb "A exited while B and C continued" true
    (b.completions + c.completions > 20);
  (* throughputs track 3:1 for the always-on clients *)
  close ~tol:0.35 "B:C throughput 3:1" 3.
    (float_of_int b.completions /. float_of_int c.completions);
  (* contended-phase response times order as 8 : 3 : 1 allocations invert *)
  checkb "A fastest" true
    (t.phase1_responses.(0) < t.phase1_responses.(1)
    && t.phase1_responses.(1) < t.phase1_responses.(2));
  close ~tol:0.5 "C/A response ratio near 8" 8.
    (t.phase1_responses.(2) /. t.phase1_responses.(0));
  (* every query returned the corpus's true count *)
  Array.iter
    (fun (cl : Fig7.client_result) ->
      Alcotest.check (Alcotest.option Alcotest.int)
        (cl.name ^ " counted the needle") (Some 8) cl.last_result)
    t.clients

let test_fig8 () =
  let t = Fig8.run ~seed:85 ~duration:(Lotto_sim.Time.seconds 200) () in
  let a_c, b_c = t.ratios_before in
  close ~tol:0.25 "A:C before" 3. a_c;
  close ~tol:0.25 "B:C before" 2. b_c;
  let a_b, c_b = t.ratios_after in
  close ~tol:0.25 "A:B after" 3. a_b;
  close ~tol:0.25 "C:B after" 2. c_b;
  (* B and C actually swapped rates at the switch *)
  checkb "B slowed down" true (t.viewers.(1).fps_after < t.viewers.(1).fps_before);
  checkb "C sped up" true (t.viewers.(2).fps_after > t.viewers.(2).fps_before)

let test_fig9 () =
  let t = Fig9.run ~seed:96 ~duration:(Lotto_sim.Time.seconds 240) () in
  close ~tol:0.1 "A aggregate unchanged" 1. t.a_aggregate_ratio;
  close ~tol:0.2 "B1 halves" 0.5 t.b1_drop;
  close ~tol:0.2 "B2 halves" 0.5 t.b2_drop;
  close ~tol:0.1 "A:B stays 1:1" 1. t.a_over_b_after;
  (* B3 only runs in the second half *)
  checkb "B3 idle first half" true (t.tasks.(4).rate_before = 0.);
  checkb "B3 runs second half" true (t.tasks.(4).rate_after > 0.)

let test_fig11 () =
  let t = Fig11.run ~seed:117 ~duration:(Lotto_sim.Time.seconds 120) () in
  close ~tol:0.35 "acquisitions ~2:1 (paper 1.80)" 2. t.acquisition_ratio;
  close ~tol:0.35 "waits ~1:2 (paper 2.11)" 2. t.wait_ratio;
  checkb "histograms populated" true
    (Core.Histogram.total t.group_a.histogram > 0
    && Core.Histogram.total t.group_b.histogram > 0);
  (* group A's typical wait is shorter: its histogram mode sits lower *)
  checkb "A's mode at or below B's" true
    (Core.Histogram.mode t.group_a.histogram <= Core.Histogram.mode t.group_b.histogram)

let test_compensation () =
  let t = Compensation.run ~seed:145 ~duration:(Lotto_sim.Time.seconds 120) () in
  close ~tol:0.15 "with compensation 1:1" 1. t.with_compensation;
  close ~tol:0.2 "without compensation 5:1" 5. t.without_compensation

let test_overhead () =
  let t = Overhead.run ~seed:156 ~duration:(Lotto_sim.Time.seconds 30) () in
  checki "5 schedulers x 2 task counts" 10 (Array.length t.rows);
  Array.iter
    (fun (r : Overhead.row) ->
      checkb (r.scheduler ^ " kept the cpu busy") true
        (r.virtual_cpu_total = Lotto_sim.Time.seconds 30);
      checkb (r.scheduler ^ " made decisions") true (r.decisions > 0);
      checkb
        (Printf.sprintf "%s per-decision cost sane (%.0fns)" r.scheduler
           r.host_ns_per_decision)
        true
        (r.host_ns_per_decision >= 0. && r.host_ns_per_decision < 1e7))
    t.rows

let test_mem () =
  let t = Mem.run ~seed:162 ~steps:150_000 () in
  checki "three policies" 3 (Array.length t.results);
  (match Mem.inverse_residents t with
  | [| gold; silver; bronze |] ->
      checkb "ordered by tickets" true (gold > silver && silver > bronze)
  | _ -> Alcotest.fail "three clients");
  (* ticket-blind policies split evenly *)
  Array.iter
    (fun (r : Mem.policy_result) ->
      if r.policy <> "inverse-lottery" then begin
        let res = Array.map (fun (c : Mem.client_row) -> c.resident) r.clients in
        checkb (r.policy ^ " even") true
          (abs (res.(0) - res.(2)) * 100 < 20 * max res.(0) res.(2))
      end)
    t.results

let test_io () =
  let t = Io.run ~seed:177 ~slots_per_phase:30_000 () in
  let share phase i = phase.(i).Io.share in
  close ~tol:0.05 "phase1 video 1/2" 0.5 (share t.phase1 0);
  close ~tol:0.05 "phase1 backup 1/3" (1. /. 3.) (share t.phase1 1);
  close ~tol:0.08 "phase1 log 1/6" (1. /. 6.) (share t.phase1 2);
  close ~tol:0.05 "phase2 video 3/4" 0.75 (share t.phase2 0);
  checki "phase2 backup idle" 0 t.phase2.(1).Io.served;
  close ~tol:0.05 "phase2 log 1/4" 0.25 (share t.phase2 2)

let test_disk_exp () =
  let t = Disk_exp.run ~seed:71 ~duration:20_000_000 () in
  (match Disk_exp.lottery_shares t with
  | [| g; s; b |] ->
      close ~tol:0.15 "gold half" 0.5 g;
      close ~tol:0.15 "silver third" (1. /. 3.) s;
      close ~tol:0.2 "bronze sixth" (1. /. 6.) b
  | _ -> Alcotest.fail "three clients");
  (* sstf throughput beats fcfs; lottery sits in between or near sstf *)
  let tp name =
    (Array.to_list t.results |> List.find (fun (r : Disk_exp.policy_result) -> r.policy = name))
      .throughput
  in
  checkb "sstf fastest" true (tp "sstf" > tp "lottery" && tp "lottery" > tp "fcfs")

let test_switch_exp () =
  let t = Switch_exp.run ~seed:91 ~slots:100_000 () in
  close ~tol:0.1 "gold half" 0.5 t.congested.(0).Switch_exp.share;
  close ~tol:0.1 "silver third" (1. /. 3.) t.congested.(1).Switch_exp.share;
  close ~tol:0.15 "bronze sixth" (1. /. 6.) t.congested.(2).Switch_exp.share;
  checkb "delay orders inversely with tickets" true
    (t.congested.(0).Switch_exp.mean_delay < t.congested.(1).Switch_exp.mean_delay
    && t.congested.(1).Switch_exp.mean_delay < t.congested.(2).Switch_exp.mean_delay);
  checki "uncongested circuit drops nothing" 0 t.uncongested.Switch_exp.dropped

let test_quantum_ablation () =
  let t = Ablation_quantum.run ~seed:25 ~duration:(Lotto_sim.Time.seconds 80) () in
  let err ms =
    (Array.to_list t.rows
    |> List.find (fun (r : Ablation_quantum.row) -> r.quantum_ms = ms))
      .mean_abs_error
  in
  checkb "10ms at least 2x tighter than 200ms" true (2. *. err 10 < err 200);
  Array.iter
    (fun (r : Ablation_quantum.row) ->
      checkb
        (Printf.sprintf "q=%dms error %.3f within 3x of binomial %.3f" r.quantum_ms
           r.mean_abs_error r.predicted_error)
        true
        (r.mean_abs_error < 3. *. r.predicted_error))
    t.rows

let test_variance_ablation () =
  let t = Ablation_variance.run ~seed:34 ~duration:(Lotto_sim.Time.seconds 120) () in
  close ~tol:0.05 "lottery mean share" (2. /. 3.) t.lottery.Ablation_variance.mean_share;
  close ~tol:0.05 "stride mean share" (2. /. 3.) t.stride.Ablation_variance.mean_share;
  checkb "stride variance far below lottery" true
    (3. *. t.stride.Ablation_variance.share_stddev
    < t.lottery.Ablation_variance.share_stddev)

let test_mc_ablation () =
  let t = Ablation_mc.run ~seed:67 ~duration:(Lotto_sim.Time.seconds 160) () in
  let catch e =
    (Array.to_list t.rows |> List.find (fun (r : Ablation_mc.row) -> r.exponent = e))
      .catch_up
  in
  (* footnote 6: higher exponents converge faster *)
  checkb
    (Printf.sprintf "monotone: %.3f < %.3f < %.3f" (catch 1.) (catch 2.) (catch 3.))
    true
    (catch 1. < catch 2. && catch 2. < catch 3.)

let test_search_length () =
  let t = Search_length.run ~seed:43 ~draws:2_000 () in
  Array.iter
    (fun (r : Search_length.row) ->
      checkb
        (Printf.sprintf "n=%d: mtf (%.1f) beats unordered (%.1f)" r.clients
           r.move_to_front r.unordered)
        true
        (r.move_to_front < r.unordered);
      checkb
        (Printf.sprintf "n=%d: sorted (%.1f) beats mtf (%.1f)" r.clients
           r.by_weight r.move_to_front)
        true
        (r.by_weight <= r.move_to_front);
      checkb "tree depth is lg n" true
        (r.tree_depth = Float.round (log (float_of_int r.clients) /. log 2.)))
    t.rows;
  (* the gap widens with client count *)
  let first = t.rows.(0) and last = t.rows.(Array.length t.rows - 1) in
  checkb "savings grow with n" true
    (last.Search_length.unordered /. last.Search_length.by_weight
    > first.Search_length.unordered /. first.Search_length.by_weight)

let test_csv_exports () =
  (* quoting *)
  Alcotest.check Alcotest.string "quoting"
    "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n"
    (Common.csv ~header:[ "a"; "b" ] [ [ "x,y"; "he said \"hi\"" ] ]);
  (* a representative exporter: header + one line per run *)
  let t = Fig5.run ~seed:77 ~duration:(Lotto_sim.Time.seconds 24) () in
  let csv = Fig5.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  checki "header plus 3 windows" 4 (List.length lines);
  checkb "header names columns" true
    (List.hd lines = "window_start_s,a_iter_per_s,b_iter_per_s,ratio");
  let v = Ablation_variance.run ~seed:3 ~duration:(Lotto_sim.Time.seconds 20) () in
  checkb "variance csv mentions stride" true
    (Core.Corpus.count_substring ~haystack:(Ablation_variance.to_csv v) ~needle:"stride" > 0)

let test_experiments_deterministic () =
  (* identical seeds must reproduce identical results end to end *)
  let a = Fig5.run ~seed:99 ~duration:(Lotto_sim.Time.seconds 40) () in
  let b = Fig5.run ~seed:99 ~duration:(Lotto_sim.Time.seconds 40) () in
  Alcotest.check (Alcotest.array (Alcotest.float 0.)) "fig5 windows identical"
    a.Fig5.rates_a b.Fig5.rates_a;
  let c = Fig11.run ~seed:99 ~duration:(Lotto_sim.Time.seconds 30) () in
  let d = Fig11.run ~seed:99 ~duration:(Lotto_sim.Time.seconds 30) () in
  checki "fig11 acquisitions identical" c.Fig11.group_a.Fig11.acquisitions
    d.Fig11.group_a.Fig11.acquisitions

let test_disk_service_exp () =
  let t = Disk_service_exp.run ~seed:81 ~duration:(Lotto_sim.Time.seconds 60) () in
  (* disk shares order by disk tickets and the spread is material *)
  let shares = Array.map (fun r -> r.Disk_service_exp.share) t.phase1 in
  checkb "ordered by disk tickets" true (shares.(0) > shares.(1) && shares.(1) > shares.(2));
  checkb "material spread" true (shares.(0) > 2. *. shares.(2));
  (* resource independence: disk tickets trump a 10x CPU advantage *)
  checkb
    (Printf.sprintf "disk-rich beats cpu-rich (%d vs %d)" t.disk_rich_reads
       t.cpu_rich_reads)
    true
    (t.disk_rich_reads > 3 * t.cpu_rich_reads)

let test_manager_exp () =
  let t = Manager_exp.run ~seed:64 ~epochs:150 () in
  checkb
    (Printf.sprintf "manager beats static (%d vs %d)" t.managed.Manager_exp.total_work
       t.static.Manager_exp.total_work)
    true
    (float_of_int t.managed.Manager_exp.total_work
    > 1.2 *. float_of_int t.static.Manager_exp.total_work);
  (* each app's split drifted toward its bottleneck *)
  let crunch = t.managed.Manager_exp.apps.(0) and slurp = t.managed.Manager_exp.apps.(1) in
  checkb "compute-heavy app holds more cpu tickets" true
    (crunch.Manager_exp.final_cpu_tickets > crunch.Manager_exp.final_io_tickets);
  checkb "io-heavy app holds more io tickets" true
    (slurp.Manager_exp.final_io_tickets > slurp.Manager_exp.final_cpu_tickets)

let () =
  Alcotest.run "experiments"
    [
      ( "figures",
        [
          Alcotest.test_case "fig4 relative rate accuracy" `Slow test_fig4;
          Alcotest.test_case "fig5 fairness over time" `Quick test_fig5;
          Alcotest.test_case "fig6 monte-carlo inflation" `Slow test_fig6;
          Alcotest.test_case "fig7 client-server transfers" `Slow test_fig7;
          Alcotest.test_case "fig8 video rate control" `Quick test_fig8;
          Alcotest.test_case "fig9 load insulation" `Quick test_fig9;
          Alcotest.test_case "fig11 lottery mutex" `Quick test_fig11;
        ] );
      ( "sections",
        [
          Alcotest.test_case "sec 4.5 compensation" `Quick test_compensation;
          Alcotest.test_case "sec 5.6 overhead" `Slow test_overhead;
          Alcotest.test_case "sec 6.2 inverse memory" `Slow test_mem;
          Alcotest.test_case "sec 6 io bandwidth" `Quick test_io;
          Alcotest.test_case "sec 6 disk bandwidth" `Slow test_disk_exp;
          Alcotest.test_case "sec 6 virtual circuits" `Slow test_switch_exp;
        ] );
      ( "csv",
        [ Alcotest.test_case "exporters and quoting" `Quick test_csv_exports ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed reproduces results" `Quick
            test_experiments_deterministic;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "sec 4.2 search lengths" `Quick test_search_length;
          Alcotest.test_case "quantum size vs fairness" `Slow test_quantum_ablation;
          Alcotest.test_case "lottery vs stride variance" `Quick test_variance_ablation;
          Alcotest.test_case "mc funding exponent" `Slow test_mc_ablation;
          Alcotest.test_case "sec 6.3 manager threads" `Quick test_manager_exp;
          Alcotest.test_case "sec 6 in-kernel disk service" `Slow test_disk_service_exp;
        ] );
    ]
