(* Statistics library tests: descriptive stats, histograms, chi-square,
   windowed recorders. *)

module D = Core.Descriptive
module H = Core.Histogram
module Chi = Core.Chi_square
module W = Core.Window

let check = Alcotest.check
let checkf msg = check (Alcotest.float 1e-9) msg
let checkf6 msg = check (Alcotest.float 1e-6) msg
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* --- descriptive --------------------------------------------------------- *)

let test_mean_variance () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  checkf "mean" 5. (D.mean xs);
  checkf "variance" (32. /. 7.) (D.variance xs);
  checkf "stddev" (sqrt (32. /. 7.)) (D.stddev xs)

let test_singleton_and_empty () =
  checkf "singleton variance" 0. (D.variance [| 42. |]);
  checkf "singleton mean" 42. (D.mean [| 42. |]);
  Alcotest.check_raises "empty mean" (Invalid_argument "Descriptive.mean: empty input")
    (fun () -> ignore (D.mean [||]));
  checkf "empty sum" 0. (D.sum [||])

let test_kahan_sum () =
  (* adding many tiny values to a large one: naive summation loses them *)
  let xs = Array.make 10_001 1e-11 in
  xs.(0) <- 1e10;
  checkf6 "kahan keeps the tail" (1e10 +. 1e-7) (D.sum xs)

let test_minmax_median_percentile () =
  let xs = [| 9.; 1.; 5.; 3.; 7. |] in
  checkf "min" 1. (D.minimum xs);
  checkf "max" 9. (D.maximum xs);
  checkf "median odd" 5. (D.median xs);
  checkf "median even" 4. (D.median [| 1.; 3.; 5.; 7. |]);
  checkf "p0" 1. (D.percentile xs 0.);
  checkf "p100" 9. (D.percentile xs 100.);
  checkf "p50 = median" 5. (D.percentile xs 50.);
  checkf "p25 interpolates" 3. (D.percentile xs 25.);
  (* inputs must not be mutated *)
  check (Alcotest.array (Alcotest.float 0.)) "unmutated" [| 9.; 1.; 5.; 3.; 7. |] xs

let test_cv_and_ratio_error () =
  let xs = [| 10.; 10.; 10. |] in
  checkf "cv of constant" 0. (D.coefficient_of_variation xs);
  checkf "ratio error" 0.1 (D.ratio_error ~observed:11. ~expected:10.);
  Alcotest.check_raises "zero expected"
    (Invalid_argument "Descriptive.ratio_error: zero expected") (fun () ->
      ignore (D.ratio_error ~observed:1. ~expected:0.))

let test_running_matches_batch () =
  let xs = [| 1.5; 2.5; -3.; 4.25; 0.; 100.; -0.5 |] in
  let r = D.Running.create () in
  Array.iter (D.Running.add r) xs;
  checki "count" (Array.length xs) (D.Running.count r);
  checkf6 "mean" (D.mean xs) (D.Running.mean r);
  checkf6 "variance" (D.variance xs) (D.Running.variance r);
  checkf6 "stderr" (D.stddev xs /. sqrt 7.) (D.Running.stderr_of_mean r)

let test_running_edge () =
  let r = D.Running.create () in
  checkf "empty mean" 0. (D.Running.mean r);
  checkf "empty variance" 0. (D.Running.variance r);
  checkb "stderr infinite before 2" true (D.Running.stderr_of_mean r = infinity)

let test_linear_fit () =
  (* exact line y = 3 + 2x *)
  let pts = Array.init 10 (fun i -> (float_of_int i, 3. +. (2. *. float_of_int i))) in
  let a, b = D.linear_fit pts in
  checkf6 "intercept" 3. a;
  checkf6 "slope" 2. b;
  Alcotest.check_raises "degenerate"
    (Invalid_argument "Descriptive.linear_fit: zero x-variance") (fun () ->
      ignore (D.linear_fit [| (1., 1.); (1., 2.) |]))

let qcheck_running_equals_batch =
  QCheck.Test.make ~name:"Running mean/variance equals batch computation" ~count:300
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let arr = Array.of_list xs in
      let r = D.Running.create () in
      Array.iter (D.Running.add r) arr;
      abs_float (D.mean arr -. D.Running.mean r) < 1e-6
      && abs_float (D.variance arr -. D.Running.variance r) < 1e-4)

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (float_bound_inclusive 100.))
    (fun xs ->
      let arr = Array.of_list xs in
      let prev = ref neg_infinity in
      List.for_all
        (fun p ->
          let v = D.percentile arr p in
          let ok = v >= !prev in
          prev := v;
          ok)
        [ 0.; 10.; 25.; 50.; 75.; 90.; 100. ])

(* --- histogram ------------------------------------------------------------ *)

let test_histogram_basics () =
  let h = H.create ~lo:0. ~hi:10. ~buckets:5 in
  List.iter (H.add h) [ 0.; 1.9; 2.; 5.; 9.99; -1.; 10.; 42. ];
  checki "total includes oob" 8 (H.total h);
  checki "bucket 0" 2 (H.count h 0);
  checki "bucket 1" 1 (H.count h 1);
  checki "bucket 2" 1 (H.count h 2);
  checki "bucket 4" 1 (H.count h 4);
  checki "underflow" 1 (H.underflow h);
  checki "overflow" 2 (H.overflow h);
  checkf "mid of bucket 0" 1. (H.bucket_mid h 0);
  let lo, hi = H.bucket_range h 2 in
  checkf "range lo" 4. lo;
  checkf "range hi" 6. hi;
  checki "mode" 0 (H.mode h);
  checkf "fraction" 0.25 (H.fraction h 0)

let test_histogram_render () =
  let h = H.create ~lo:0. ~hi:4. ~buckets:2 in
  List.iter (H.add h) [ 1.; 1.; 3. ];
  let s = H.render h in
  checkb "render mentions counts" true
    (String.length s > 0 && String.contains s '#')

let test_histogram_validation () =
  Alcotest.check_raises "hi <= lo" (Invalid_argument "Histogram.create: hi <= lo")
    (fun () -> ignore (H.create ~lo:1. ~hi:1. ~buckets:3));
  Alcotest.check_raises "no buckets" (Invalid_argument "Histogram.create: buckets <= 0")
    (fun () -> ignore (H.create ~lo:0. ~hi:1. ~buckets:0))

(* --- chi-square ------------------------------------------------------------ *)

let test_chi_statistic () =
  let s = Chi.statistic ~observed:[| 10; 20; 30 |] ~expected:[| 20.; 20.; 20. |] in
  checkf6 "pearson statistic" 10. s

let test_chi_p_values () =
  (* classic critical values: P(X >= 3.841) with df=1 is 0.05 *)
  checkb "df=1 at 3.841" true
    (abs_float (Chi.p_value ~statistic:3.841 ~df:1 -. 0.05) < 1e-3);
  checkb "df=5 at 11.070" true
    (abs_float (Chi.p_value ~statistic:11.070 ~df:5 -. 0.05) < 1e-3);
  checkf6 "statistic 0 is certain" 1. (Chi.p_value ~statistic:0. ~df:3);
  checkb "huge statistic vanishes" true (Chi.p_value ~statistic:1000. ~df:3 < 1e-10)

let test_chi_goodness_accepts_fair () =
  (* a genuinely proportional sample must not be rejected *)
  let observed = [| 1020; 1980; 3000 |] in
  checkb "accepts" true
    (Chi.goodness_of_fit ~observed ~weights:[| 1.; 2.; 3. |] ())

let test_chi_goodness_rejects_unfair () =
  let observed = [| 3000; 2000; 1000 |] in
  checkb "rejects" false
    (Chi.goodness_of_fit ~observed ~weights:[| 1.; 2.; 3. |] ())

let test_chi_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Chi_square.statistic: length mismatch") (fun () ->
      ignore (Chi.statistic ~observed:[| 1 |] ~expected:[| 1.; 2. |]));
  Alcotest.check_raises "nonpositive expected"
    (Invalid_argument "Chi_square.statistic: nonpositive expected") (fun () ->
      ignore (Chi.statistic ~observed:[| 1 |] ~expected:[| 0. |]))

(* --- window recorders ------------------------------------------------------ *)

let test_counter_windows () =
  let c = W.Counter.create ~width:10 in
  W.Counter.bump c ~time:0;
  W.Counter.bump c ~time:9;
  W.Counter.bump c ~time:10;
  W.Counter.record c ~time:25 ~count:5;
  check (Alcotest.array Alcotest.int) "windows" [| 2; 1; 5 |]
    (W.Counter.windows c ~upto:30);
  check (Alcotest.array Alcotest.int) "cumulative" [| 2; 3; 8 |]
    (W.Counter.cumulative c ~upto:30);
  checki "total" 8 (W.Counter.total c);
  checki "width" 10 (W.Counter.width c);
  (* empty trailing windows are zero-filled *)
  check (Alcotest.array Alcotest.int) "zero-filled" [| 2; 1; 5; 0; 0 |]
    (W.Counter.windows c ~upto:50)

let test_counter_rates () =
  let c = W.Counter.create ~width:1000 in
  W.Counter.record c ~time:0 ~count:500;
  let rates = W.Counter.rates c ~upto:1000 ~per:100 in
  checkf "rate rescaled" 50. rates.(0)

let test_counter_out_of_order () =
  let c = W.Counter.create ~width:10 in
  W.Counter.bump c ~time:95;
  W.Counter.bump c ~time:5;
  check (Alcotest.array Alcotest.int) "both recorded"
    [| 1; 0; 0; 0; 0; 0; 0; 0; 0; 1 |]
    (W.Counter.windows c ~upto:100)

let test_counter_validation () =
  Alcotest.check_raises "width" (Invalid_argument "Window.Counter.create: width <= 0")
    (fun () -> ignore (W.Counter.create ~width:0));
  let c = W.Counter.create ~width:5 in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Window.Counter.record: negative time") (fun () ->
      W.Counter.bump c ~time:(-1))

let test_series () =
  let s = W.Series.create () in
  W.Series.record s ~time:5 ~value:1.5;
  W.Series.record s ~time:15 ~value:2.5;
  W.Series.record s ~time:25 ~value:3.5;
  checki "length" 3 (W.Series.length s);
  check (Alcotest.array Alcotest.int) "times" [| 5; 15; 25 |] (W.Series.times s);
  check (Alcotest.array (Alcotest.float 0.)) "values" [| 1.5; 2.5; 3.5 |]
    (W.Series.values s);
  check (Alcotest.array (Alcotest.float 0.)) "between" [| 2.5 |]
    (W.Series.between s ~lo:10 ~hi:20)

let () =
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean/variance/stddev" `Quick test_mean_variance;
          Alcotest.test_case "singletons and empties" `Quick test_singleton_and_empty;
          Alcotest.test_case "kahan summation" `Quick test_kahan_sum;
          Alcotest.test_case "min/max/median/percentile" `Quick
            test_minmax_median_percentile;
          Alcotest.test_case "cv and ratio error" `Quick test_cv_and_ratio_error;
          Alcotest.test_case "running matches batch" `Quick test_running_matches_batch;
          Alcotest.test_case "running edge cases" `Quick test_running_edge;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets and oob counters" `Quick test_histogram_basics;
          Alcotest.test_case "render" `Quick test_histogram_render;
          Alcotest.test_case "validation" `Quick test_histogram_validation;
        ] );
      ( "chi-square",
        [
          Alcotest.test_case "pearson statistic" `Quick test_chi_statistic;
          Alcotest.test_case "p-values at critical points" `Quick test_chi_p_values;
          Alcotest.test_case "accepts a fair sample" `Quick test_chi_goodness_accepts_fair;
          Alcotest.test_case "rejects an unfair sample" `Quick
            test_chi_goodness_rejects_unfair;
          Alcotest.test_case "validation" `Quick test_chi_validation;
        ] );
      ( "window",
        [
          Alcotest.test_case "counter windows/cumulative" `Quick test_counter_windows;
          Alcotest.test_case "counter rate rescaling" `Quick test_counter_rates;
          Alcotest.test_case "out-of-order events" `Quick test_counter_out_of_order;
          Alcotest.test_case "counter validation" `Quick test_counter_validation;
          Alcotest.test_case "series" `Quick test_series;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_running_equals_batch; qcheck_percentile_monotone ] );
    ]
