test/test_draw.ml: Alcotest Array Core Gen List Option Printf QCheck QCheck_alcotest
