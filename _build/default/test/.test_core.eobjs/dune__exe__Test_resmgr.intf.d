test/test_resmgr.mli:
