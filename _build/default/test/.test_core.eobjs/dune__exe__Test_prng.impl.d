test/test_prng.ml: Alcotest Array Core Fun List Printf QCheck QCheck_alcotest
