test/test_draw.mli:
