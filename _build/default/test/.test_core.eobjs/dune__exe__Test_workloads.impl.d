test/test_workloads.ml: Alcotest Api Array Core Corpus Db Float Kernel List Lottery_sched Monte_carlo Mutex_workload Printf Rng Spinner String Time Types Video
