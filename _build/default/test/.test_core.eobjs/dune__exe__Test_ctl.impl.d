test/test_ctl.ml: Alcotest Core Filename List Lotto_ctl Lotto_sim Printf String Sys
