test/test_funding.mli:
