test/test_sim.ml: Alcotest Api Array Buffer Core Effect Format Kernel List Lottery_sched Lotto_sim Printf Queue Rng Round_robin Time Timeline Types
