test/test_acl.ml: Alcotest Core List
