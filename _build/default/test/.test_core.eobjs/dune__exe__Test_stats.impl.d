test/test_stats.ml: Alcotest Array Core Gen List QCheck QCheck_alcotest String
