test/test_funding.ml: Alcotest Array Core Format List Printf QCheck QCheck_alcotest
