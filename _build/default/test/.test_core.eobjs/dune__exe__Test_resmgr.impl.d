test/test_resmgr.ml: Alcotest Array Core Float List Printf
