(* Workload models: corpus generation and search, spinner accounting, the
   DB server/client pair, video viewers, Monte-Carlo tasks, and the mutex
   contention harness. *)

open Core

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let lottery_kernel ~seed () =
  let rng = Rng.create ~seed () in
  let ls = Lottery_sched.create ~rng () in
  (Kernel.create ~sched:(Lottery_sched.sched ls) (), ls)

(* --- corpus ------------------------------------------------------------------ *)

let test_corpus_deterministic () =
  let a = Corpus.generate ~seed:1 ~size_bytes:4096 () in
  let b = Corpus.generate ~seed:1 ~size_bytes:4096 () in
  let c = Corpus.generate ~seed:2 ~size_bytes:4096 () in
  check Alcotest.string "same seed, same text" a b;
  checkb "different seed differs" true (a <> c)

let test_corpus_size_and_needle () =
  let text = Corpus.generate ~seed:3 ~size_bytes:20_000 ~needle:"lottery" ~occurrences:8 () in
  checkb "approx size" true (String.length text >= 20_000 && String.length text < 22_000);
  checki "planted occurrences" 8 (Corpus.count_substring ~haystack:text ~needle:"lottery")

let test_corpus_zero_occurrences () =
  let text = Corpus.generate ~seed:4 ~size_bytes:8192 ~needle:"lottery" ~occurrences:0 () in
  checki "no accidental occurrences" 0
    (Corpus.count_substring ~haystack:text ~needle:"lottery")

let test_count_substring_cases () =
  checki "simple" 2 (Corpus.count_substring ~haystack:"abcabc" ~needle:"abc");
  checki "case-insensitive" 3 (Corpus.count_substring ~haystack:"aAa" ~needle:"a");
  checki "non-overlapping" 2 (Corpus.count_substring ~haystack:"aaaa" ~needle:"aa");
  checki "missing" 0 (Corpus.count_substring ~haystack:"hello" ~needle:"xyz");
  checki "needle longer than haystack" 0 (Corpus.count_substring ~haystack:"ab" ~needle:"abc");
  checki "empty haystack" 0 (Corpus.count_substring ~haystack:"" ~needle:"x");
  Alcotest.check_raises "empty needle"
    (Invalid_argument "Corpus.count_substring: empty needle") (fun () ->
      ignore (Corpus.count_substring ~haystack:"x" ~needle:""))

(* --- spinner ------------------------------------------------------------------- *)

let test_spinner_accounting () =
  let k, ls = lottery_kernel ~seed:21 () in
  let s = Spinner.spawn k ~name:"s" ~cost:(Time.ms 2) () in
  ignore
    (Lottery_sched.fund_thread ls (Spinner.thread s) ~amount:10
       ~from:(Lottery_sched.base_currency ls));
  (* run one window past the measurement horizon so the final iteration's
     post-compute bookkeeping is not cut off at the boundary *)
  ignore (Kernel.run k ~until:(Time.seconds 10 + Time.ms 10));
  checkb "iterations = cpu / cost" true (Spinner.iterations s >= 5000);
  checkb "cpu" true (Kernel.cpu_time (Spinner.thread s) >= Time.seconds 10);
  let w = Spinner.windows s ~upto:(Time.seconds 10) in
  checki "10 windows" 10 (Array.length w);
  (* an iteration completing exactly on a window boundary lands in the next
     window, so each holds 500 +/- 1 *)
  Array.iter (fun c -> checkb "about 500 per window" true (abs (c - 500) <= 1)) w;
  let cum = Spinner.cumulative s ~upto:(Time.seconds 10) in
  checkb "cumulative total" true (abs (cum.(9) - 5000) <= 1);
  let rates = Spinner.rate_per_second s ~upto:(Time.seconds 10) in
  checkb "rate about 500/s" true (abs_float (rates.(0) -. 500.) <= 1.)

let test_spinner_start_at () =
  let k, ls = lottery_kernel ~seed:22 () in
  let s = Spinner.spawn k ~name:"late" ~cost:(Time.ms 1) ~start_at:(Time.seconds 5) () in
  ignore
    (Lottery_sched.fund_thread ls (Spinner.thread s) ~amount:10
       ~from:(Lottery_sched.base_currency ls));
  ignore (Kernel.run k ~until:(Time.seconds 10));
  checki "nothing before start" 0 (Spinner.iterations_between s ~lo:0 ~hi:(Time.seconds 5));
  checki "everything after" (Spinner.iterations s)
    (Spinner.iterations_between s ~lo:(Time.seconds 5) ~hi:(Time.seconds 10))

(* --- db ----------------------------------------------------------------------------- *)

let test_db_end_to_end () =
  let k, ls = lottery_kernel ~seed:23 () in
  let corpus = Corpus.generate ~seed:5 ~size_bytes:8192 ~needle:"zebra" ~occurrences:5 () in
  let server =
    Db.start_server k ~name:"db" ~workers:2 ~query_cost:(Time.ms 500) ~corpus ()
  in
  let client =
    Db.spawn_client k server ~name:"c" ~query:"zebra" ~max_queries:4
      ~start_at:(Time.ms 1) ()
  in
  ignore
    (Lottery_sched.fund_thread ls (Db.thread client) ~amount:100
       ~from:(Lottery_sched.base_currency ls));
  ignore (Kernel.run k ~until:(Time.seconds 30));
  checki "completions" 4 (Db.completions client);
  check (Alcotest.option Alcotest.int) "result is the real count" (Some 5)
    (Db.last_result client);
  checki "server counter" 4 (Db.queries_served server);
  checki "response series lengths" 4 (Array.length (Db.response_times client));
  checkb "client exited after max_queries" true
    (Kernel.thread_state (Db.thread client) = Types.Zombie);
  checkb "responses ~0.5s each" true
    (Array.for_all (fun r -> r >= 0.5 && r < 1.0) (Db.response_times client))

let test_db_mean_response_nan_before_first () =
  let k, _ls = lottery_kernel ~seed:24 () in
  let corpus = "tiny corpus" in
  let server = Db.start_server k ~name:"db" ~corpus () in
  let client = Db.spawn_client k server ~name:"c" ~query:"x" () in
  checkb "nan before completions" true (Float.is_nan (Db.mean_response_time client))

(* --- video --------------------------------------------------------------------------- *)

let test_video_frame_rate () =
  let k, ls = lottery_kernel ~seed:25 () in
  let v = Video.spawn_viewer k ~name:"v" ~frame_cost:(Time.ms 100) () in
  ignore
    (Lottery_sched.fund_thread ls (Video.thread v) ~amount:10
       ~from:(Lottery_sched.base_currency ls));
  ignore (Kernel.run k ~until:(Time.seconds 20 + Time.ms 200));
  checkb "frames" true (Video.frames v >= 200);
  checkb "fps about 10" true
    (abs_float (Video.fps v ~lo:0 ~hi:(Time.seconds 20) -. 10.) <= 0.1);
  let cum = Video.cumulative v ~upto:(Time.seconds 20) in
  checkb "cumulative about 200" true (abs (cum.(Array.length cum - 1) - 200) <= 1)

(* --- monte carlo --------------------------------------------------------------------- *)

let test_monte_carlo_estimates_quarter_pi () =
  let k, ls = lottery_kernel ~seed:26 () in
  let mc = Lottery_sched.make_currency ls "mc" in
  ignore
    (Lottery_sched.fund_currency ls ~target:mc ~amount:100
       ~from:(Lottery_sched.base_currency ls));
  let task =
    Monte_carlo.spawn k ls ~name:"mc"
      ~rng:(Rng.create ~algo:Splitmix64 ~seed:1 ())
      ~from:mc ()
  in
  ignore (Kernel.run k ~until:(Time.seconds 60));
  checkb "ran" true (Monte_carlo.trials task > 100_000);
  let est = Monte_carlo.estimate task in
  checkb
    (Printf.sprintf "estimate %f near pi/4" est)
    true
    (abs_float (est -. (Float.pi /. 4.)) < 0.01);
  checkb "error small and finite" true
    (Float.is_finite (Monte_carlo.relative_error task)
    && Monte_carlo.relative_error task < 0.01);
  checkb "ticket settled below max" true (Monte_carlo.current_ticket task < 1_000_000)

let test_monte_carlo_error_decreases () =
  let k, ls = lottery_kernel ~seed:27 () in
  let mc = Lottery_sched.make_currency ls "mc" in
  ignore
    (Lottery_sched.fund_currency ls ~target:mc ~amount:100
       ~from:(Lottery_sched.base_currency ls));
  let task =
    Monte_carlo.spawn k ls ~name:"mc"
      ~rng:(Rng.create ~algo:Splitmix64 ~seed:2 ())
      ~from:mc ()
  in
  ignore (Kernel.run k ~until:(Time.seconds 10));
  let e1 = Monte_carlo.relative_error task in
  let t1 = Monte_carlo.trials task in
  ignore (Kernel.run k ~until:(Time.seconds 40));
  let e2 = Monte_carlo.relative_error task in
  checkb "error decreased" true (e2 < e1);
  checkb "trials grew" true (Monte_carlo.trials task > t1);
  let cum = Monte_carlo.cumulative task ~upto:(Time.seconds 40) in
  let monotone = ref true in
  Array.iteri (fun i c -> if i > 0 && c < cum.(i - 1) then monotone := false) cum;
  checkb "cumulative is monotone" true !monotone

let test_monte_carlo_newcomer_outbids () =
  (* a task with converged error must hold a much smaller ticket than a
     fresh one *)
  let k, ls = lottery_kernel ~seed:28 () in
  let mc = Lottery_sched.make_currency ls "mc" in
  ignore
    (Lottery_sched.fund_currency ls ~target:mc ~amount:100
       ~from:(Lottery_sched.base_currency ls));
  let old_task =
    Monte_carlo.spawn k ls ~name:"old"
      ~rng:(Rng.create ~algo:Splitmix64 ~seed:3 ())
      ~from:mc ()
  in
  let newcomer =
    Monte_carlo.spawn k ls ~name:"new"
      ~rng:(Rng.create ~algo:Splitmix64 ~seed:4 ())
      ~from:mc ~start_at:(Time.seconds 30) ()
  in
  ignore (Kernel.run k ~until:(Time.seconds 30 + Time.ms 150));
  checkb "newcomer ticket dwarfs the old one" true
    (Monte_carlo.current_ticket newcomer > 50 * Monte_carlo.current_ticket old_task)

(* --- disk service -------------------------------------------------------------------- *)

module Ds = Core.Disk_service

let test_disk_service_basics () =
  let k, ls = lottery_kernel ~seed:30 () in
  let disk =
    Ds.start k ~rng:(Rng.create ~algo:Splitmix64 ~seed:31 ()) ~name:"disk"
      ~cylinders:100 ~seek_cost:(Time.us 10) ~transfer_cost:(Time.ms 1) ()
  in
  ignore (Kernel.run k ~until:(Time.us 1));
  let done_at = ref (-1) in
  let client =
    Kernel.spawn k ~name:"client" (fun () ->
        Ds.read disk ~cylinder:50;
        Ds.read disk ~cylinder:50;
        done_at := Api.now ())
  in
  ignore
    (Lottery_sched.fund_thread ls client ~amount:100
       ~from:(Lottery_sched.base_currency ls));
  ignore (Kernel.run k ~until:(Time.seconds 5));
  checki "reads accounted" 2 (Ds.reads_completed disk client);
  checki "total" 2 (Ds.total_reads disk);
  checki "head followed the reads" 50 (Ds.head_position disk);
  (* first read seeks 50 cylinders (500us) + 1ms; second has zero seek *)
  checkb "service time charged" true (!done_at >= Time.us 2500);
  checkb "no failures" true (Kernel.failures k = [])

let test_disk_service_validation () =
  let k, _ls = lottery_kernel ~seed:32 () in
  let disk =
    Ds.start k ~rng:(Rng.create ~algo:Splitmix64 ~seed:33 ()) ~name:"disk"
      ~cylinders:10 ()
  in
  ignore
    (Kernel.spawn k ~name:"bad" (fun () -> Ds.read disk ~cylinder:10));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "range error recorded" true
    (match Kernel.failures k with [ (_, Invalid_argument _) ] -> true | _ -> false);
  let th = Kernel.spawn k ~name:"x" (fun () -> ()) in
  checkb "negative tickets rejected" true
    (match Ds.set_disk_tickets disk th (-1) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- mutex workload -------------------------------------------------------------------- *)

let test_mutex_workload_records () =
  let k, ls = lottery_kernel ~seed:29 () in
  let m = Kernel.create_mutex k ~policy:Types.Lottery_wake "m" in
  let c1 = Mutex_workload.spawn_contender k ~mutex:m ~name:"c1" () in
  let c2 = Mutex_workload.spawn_contender k ~mutex:m ~name:"c2" () in
  List.iter
    (fun c ->
      ignore
        (Lottery_sched.fund_thread ls (Mutex_workload.thread c) ~amount:100
           ~from:(Lottery_sched.base_currency ls)))
    [ c1; c2 ];
  ignore (Kernel.run k ~until:(Time.seconds 30));
  checkb "both acquired" true
    (Mutex_workload.acquisitions c1 > 0 && Mutex_workload.acquisitions c2 > 0);
  checki "one wait sample per acquisition" (Mutex_workload.acquisitions c1)
    (Array.length (Mutex_workload.waiting_times c1));
  checkb "waits nonnegative" true
    (Array.for_all (fun w -> w >= 0.) (Mutex_workload.waiting_times c1));
  checkb "mean finite" true (Float.is_finite (Mutex_workload.mean_wait c1));
  (* conservation: total hold time can't exceed the horizon *)
  let total_holds =
    (Mutex_workload.acquisitions c1 + Mutex_workload.acquisitions c2) * Time.ms 50
  in
  checkb "hold time bounded by horizon" true (total_holds <= Time.seconds 30)

let () =
  Alcotest.run "workloads"
    [
      ( "corpus",
        [
          Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
          Alcotest.test_case "size and planted needle" `Quick test_corpus_size_and_needle;
          Alcotest.test_case "zero occurrences possible" `Quick test_corpus_zero_occurrences;
          Alcotest.test_case "count_substring edge cases" `Quick test_count_substring_cases;
        ] );
      ( "spinner",
        [
          Alcotest.test_case "iteration accounting" `Quick test_spinner_accounting;
          Alcotest.test_case "delayed start" `Quick test_spinner_start_at;
        ] );
      ( "db",
        [
          Alcotest.test_case "end-to-end query results" `Quick test_db_end_to_end;
          Alcotest.test_case "nan before first completion" `Quick
            test_db_mean_response_nan_before_first;
        ] );
      ("video", [ Alcotest.test_case "frame accounting" `Quick test_video_frame_rate ]);
      ( "monte-carlo",
        [
          Alcotest.test_case "estimates pi/4" `Quick test_monte_carlo_estimates_quarter_pi;
          Alcotest.test_case "error decreases with trials" `Quick
            test_monte_carlo_error_decreases;
          Alcotest.test_case "newcomer outbids converged task" `Quick
            test_monte_carlo_newcomer_outbids;
        ] );
      ( "disk-service",
        [
          Alcotest.test_case "reads, seek accounting" `Quick test_disk_service_basics;
          Alcotest.test_case "validation" `Quick test_disk_service_validation;
        ] );
      ( "mutex-workload",
        [ Alcotest.test_case "recording and conservation" `Quick test_mutex_workload_records ] );
    ]
