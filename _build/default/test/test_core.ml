(* Facade sanity: the Core module re-exports the whole stack and the
   quickstart pattern from its documentation works. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_quickstart_pattern () =
  let rng = Core.Rng.create ~seed:42 () in
  let ls = Core.Lottery_sched.create ~rng () in
  let kernel = Core.Kernel.create ~sched:(Core.Lottery_sched.sched ls) () in
  let worker name =
    Core.Kernel.spawn kernel ~name (fun () ->
        while true do
          Core.Api.compute (Core.Time.ms 1)
        done)
  in
  let a = worker "a" and b = worker "b" in
  let base = Core.Lottery_sched.base_currency ls in
  ignore (Core.Lottery_sched.fund_thread ls a ~amount:200 ~from:base);
  ignore (Core.Lottery_sched.fund_thread ls b ~amount:100 ~from:base);
  ignore (Core.Kernel.run kernel ~until:(Core.Time.seconds 60));
  let ratio =
    float_of_int (Core.Kernel.cpu_time a) /. float_of_int (Core.Kernel.cpu_time b)
  in
  checkb (Printf.sprintf "doc example 2:1 (got %.2f)" ratio) true
    (ratio > 1.5 && ratio < 2.7)

let test_reexports_coherent () =
  checki "park-miller modulus" 2147483647 Core.Park_miller.modulus;
  checki "time seconds" 1_000_000 (Core.Time.seconds 1);
  let sys = Core.Funding.create_system () in
  checkb "base currency" true (Core.Funding.is_base (Core.Funding.base sys));
  let t = Core.Tree_lottery.create () in
  checki "tree empty" 0 (Core.Tree_lottery.size t)

let () =
  Alcotest.run "core"
    [
      ( "facade",
        [
          Alcotest.test_case "doc quickstart works" `Quick test_quickstart_pattern;
          Alcotest.test_case "re-exports coherent" `Quick test_reexports_coherent;
        ] );
    ]
