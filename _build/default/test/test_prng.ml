(* PRNG tests: the Park–Miller generator against its published check value,
   plus the generic Rng layer (bounds, uniformity, determinism). *)

module Pm = Core.Park_miller
module Sm = Core.Splitmix64
module Xo = Core.Xoshiro256
module Rng = Core.Rng
module Chi = Core.Chi_square

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* --- Park–Miller -------------------------------------------------------- *)

let test_pm_known_sequence () =
  (* First outputs from seed 1: 16807, 282475249, 1622650073, ... *)
  let g = Pm.create ~seed:1 in
  checki "step 1" 16807 (Pm.next g);
  checki "step 2" 282475249 (Pm.next g);
  checki "step 3" 1622650073 (Pm.next g)

let test_pm_park_miller_check_value () =
  (* The original CACM paper's correctness test: starting from seed 1,
     the 10,000th output must be 1043618065. *)
  let g = Pm.create ~seed:1 in
  let last = ref 0 in
  for _ = 1 to 10_000 do
    last := Pm.next g
  done;
  checki "10000th value" 1043618065 !last

let test_pm_range () =
  let g = Pm.create ~seed:123456 in
  for _ = 1 to 10_000 do
    let x = Pm.next g in
    if x < 1 || x >= Pm.modulus then Alcotest.failf "out of range: %d" x
  done

let test_pm_seed_normalization () =
  (* Zero and multiples of the modulus-1 must not produce the absorbing
     state 0. *)
  List.iter
    (fun seed ->
      let g = Pm.create ~seed in
      let s = Pm.state g in
      checkb "state in range" true (s >= 1 && s < Pm.modulus);
      ignore (Pm.next g))
    [ 0; Pm.modulus - 1; -1; -Pm.modulus; max_int; min_int + 1 ]

let test_pm_set_state () =
  let g = Pm.create ~seed:1 in
  Pm.set_state g 42;
  checki "state readback" 42 (Pm.state g);
  Alcotest.check_raises "zero rejected" (Invalid_argument "Park_miller.set_state: out of range")
    (fun () -> Pm.set_state g 0)

let test_pm_copy_independent () =
  let g = Pm.create ~seed:7 in
  ignore (Pm.next g);
  let h = Pm.copy g in
  let a = Pm.next g in
  let b = Pm.next h in
  checki "copies advance identically" a b;
  ignore (Pm.next g);
  checki "original advanced independently" b (Pm.state h)

(* --- SplitMix64 / Xoshiro ------------------------------------------------ *)

let test_splitmix_reference () =
  (* Published reference outputs for seed 1234567. *)
  let g = Sm.create ~seed:1234567 in
  check Alcotest.int64 "out 1" 6457827717110365317L (Sm.next_int64 g);
  check Alcotest.int64 "out 2" 3203168211198807973L (Sm.next_int64 g)

let test_splitmix_determinism () =
  let a = Sm.create ~seed:99 and b = Sm.create ~seed:99 in
  for i = 1 to 100 do
    check Alcotest.int64 (Printf.sprintf "step %d" i) (Sm.next_int64 a) (Sm.next_int64 b)
  done

let test_xoshiro_nonzero_and_deterministic () =
  let a = Xo.create ~seed:5 and b = Xo.create ~seed:5 in
  let all_zero = ref true in
  for _ = 1 to 1000 do
    let x = Xo.next_int64 a and y = Xo.next_int64 b in
    check Alcotest.int64 "same stream" x y;
    if x <> 0L then all_zero := false
  done;
  checkb "produces nonzero output" false !all_zero

let test_xoshiro_copy () =
  let a = Xo.create ~seed:13 in
  ignore (Xo.next_int64 a);
  let b = Xo.copy a in
  check Alcotest.int64 "same next output" (Xo.next_int64 a) (Xo.next_int64 b)

(* --- Rng generic layer --------------------------------------------------- *)

let algos = [ Rng.Park_miller; Rng.Splitmix64; Rng.Xoshiro256pp ]

let each_algo f = List.iter (fun algo -> f (Rng.create ~algo ~seed:2024 ())) algos

let test_int_below_bounds () =
  each_algo (fun rng ->
      List.iter
        (fun n ->
          for _ = 1 to 2_000 do
            let x = Rng.int_below rng n in
            if x < 0 || x >= n then
              Alcotest.failf "%s: int_below %d gave %d" (Rng.name rng) n x
          done)
        [ 1; 2; 3; 7; 100; 1_000_000 ])

let test_int_below_errors () =
  each_algo (fun rng ->
      Alcotest.check_raises "zero" (Invalid_argument "Rng.int_below: n <= 0")
        (fun () -> ignore (Rng.int_below rng 0));
      Alcotest.check_raises "negative" (Invalid_argument "Rng.int_below: n <= 0")
        (fun () -> ignore (Rng.int_below rng (-5))))

let test_int_below_large_park_miller () =
  (* beyond the single-draw range: exercises the two-draw composition *)
  let rng = Rng.create ~algo:Park_miller ~seed:5 () in
  let n = 1 lsl 40 in
  for _ = 1 to 1_000 do
    let x = Rng.int_below rng n in
    checkb "in range" true (x >= 0 && x < n)
  done

let test_int_below_uniformity () =
  each_algo (fun rng ->
      let n = 10 in
      let observed = Array.make n 0 in
      for _ = 1 to 20_000 do
        let x = Rng.int_below rng n in
        observed.(x) <- observed.(x) + 1
      done;
      let weights = Array.make n 1. in
      checkb
        (Printf.sprintf "%s uniform by chi-square" (Rng.name rng))
        true
        (Chi.goodness_of_fit ~observed ~weights ()))

let test_int_in () =
  each_algo (fun rng ->
      for _ = 1 to 1_000 do
        let x = Rng.int_in rng ~lo:(-5) ~hi:5 in
        checkb "in [-5,5]" true (x >= -5 && x <= 5)
      done;
      Alcotest.check_raises "hi < lo" (Invalid_argument "Rng.int_in: hi < lo")
        (fun () -> ignore (Rng.int_in rng ~lo:3 ~hi:2)))

let test_float_unit () =
  each_algo (fun rng ->
      let sum = ref 0. in
      for _ = 1 to 10_000 do
        let x = Rng.float_unit rng in
        checkb "in [0,1)" true (x >= 0. && x < 1.);
        sum := !sum +. x
      done;
      let mean = !sum /. 10_000. in
      checkb
        (Printf.sprintf "%s mean near 0.5 (got %f)" (Rng.name rng) mean)
        true
        (abs_float (mean -. 0.5) < 0.02))

let test_bool_balance () =
  each_algo (fun rng ->
      let trues = ref 0 in
      for _ = 1 to 10_000 do
        if Rng.bool rng then incr trues
      done;
      checkb "roughly balanced" true (abs (!trues - 5000) < 300))

let test_exponential () =
  let rng = Rng.create ~seed:3 () in
  let sum = ref 0. in
  for _ = 1 to 20_000 do
    let x = Rng.exponential rng ~mean:2.5 in
    checkb "nonnegative" true (x >= 0.);
    sum := !sum +. x
  done;
  checkb "mean near 2.5" true (abs_float ((!sum /. 20_000.) -. 2.5) < 0.1);
  Alcotest.check_raises "bad mean" (Invalid_argument "Rng.exponential: mean <= 0")
    (fun () -> ignore (Rng.exponential rng ~mean:0.))

let test_gaussian () =
  let rng = Rng.create ~algo:Splitmix64 ~seed:4 () in
  let stats = Core.Descriptive.Running.create () in
  for _ = 1 to 20_000 do
    Core.Descriptive.Running.add stats (Rng.gaussian rng ~mu:10. ~sigma:3.)
  done;
  checkb "mean near 10" true
    (abs_float (Core.Descriptive.Running.mean stats -. 10.) < 0.1);
  checkb "stddev near 3" true
    (abs_float (Core.Descriptive.Running.stddev stats -. 3.) < 0.1)

let test_shuffle_is_permutation () =
  let rng = Rng.create ~seed:77 () in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same multiset" (Array.init 50 Fun.id) sorted

let test_shuffle_uniform_first_element () =
  let rng = Rng.create ~seed:78 () in
  let n = 6 in
  let observed = Array.make n 0 in
  for _ = 1 to 12_000 do
    let arr = Array.init n Fun.id in
    Rng.shuffle rng arr;
    observed.(arr.(0)) <- observed.(arr.(0)) + 1
  done;
  checkb "first element uniform" true
    (Chi.goodness_of_fit ~observed ~weights:(Array.make n 1.) ())

let test_choose () =
  let rng = Rng.create ~seed:9 () in
  for _ = 1 to 100 do
    let x = Rng.choose rng [| 1; 2; 3 |] in
    checkb "member" true (List.mem x [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng ([||] : int array)))

let test_raw_bounds_and_algo () =
  each_algo (fun rng ->
      let range = Rng.raw_range rng in
      checkb "range sane" true (range > 1);
      for _ = 1 to 1_000 do
        let r = Rng.raw rng in
        checkb "raw below range" true (r >= 0 && r < range)
      done);
  let rng = Rng.create ~algo:Xoshiro256pp ~seed:1 () in
  checkb "algo accessor" true (Rng.algo rng = Rng.Xoshiro256pp);
  check Alcotest.string "name" "xoshiro256++" (Rng.name rng)

let test_copy_and_split () =
  each_algo (fun rng ->
      ignore (Rng.raw rng);
      let c = Rng.copy rng in
      checki "copy same draw" (Rng.raw rng) (Rng.raw c);
      let s = Rng.split rng in
      checkb "split has same algo" true (Rng.algo s = Rng.algo rng);
      (* the split stream should not mirror the parent *)
      let same = ref 0 in
      for _ = 1 to 50 do
        if Rng.int_below rng 1000 = Rng.int_below s 1000 then incr same
      done;
      checkb "split diverges" true (!same < 10))

let test_determinism_across_create () =
  each_algo (fun rng ->
      let rng' = Rng.create ~algo:(Rng.algo rng) ~seed:2024 () in
      for _ = 1 to 100 do
        checki "same stream from same seed" (Rng.raw rng) (Rng.raw rng')
      done)

let test_serial_correlation () =
  (* lag-1 autocorrelation of normalized outputs should be near zero for
     every generator *)
  each_algo (fun rng ->
      let n = 20_000 in
      let xs = Array.init n (fun _ -> Rng.float_unit rng) in
      let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
      let num = ref 0. and den = ref 0. in
      for i = 0 to n - 2 do
        num := !num +. ((xs.(i) -. mean) *. (xs.(i + 1) -. mean))
      done;
      Array.iter (fun x -> den := !den +. ((x -. mean) ** 2.)) xs;
      let rho = !num /. !den in
      checkb
        (Printf.sprintf "%s lag-1 correlation %.4f small" (Rng.name rng) rho)
        true
        (abs_float rho < 0.03))

(* --- qcheck properties --------------------------------------------------- *)

let qcheck_int_below_in_range =
  QCheck.Test.make ~name:"int_below always lands in [0, n)" ~count:500
    QCheck.(pair (int_bound 1_000_000) small_int)
    (fun (n, seed) ->
      let n = n + 1 in
      let rng = Rng.create ~seed ()
      and rng2 = Rng.create ~algo:Splitmix64 ~seed () in
      let x = Rng.int_below rng n and y = Rng.int_below rng2 n in
      x >= 0 && x < n && y >= 0 && y < n)

let qcheck_pm_state_stays_valid =
  QCheck.Test.make ~name:"park-miller state stays in [1, m-1]" ~count:200
    QCheck.small_int
    (fun seed ->
      let g = Pm.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let s = Pm.next g in
        if s < 1 || s >= Pm.modulus then ok := false
      done;
      !ok)

let qcheck_shuffle_preserves_elements =
  QCheck.Test.make ~name:"shuffle preserves the multiset" ~count:200
    QCheck.(pair (list small_int) small_int)
    (fun (xs, seed) ->
      let rng = Rng.create ~seed () in
      let arr = Array.of_list xs in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let () =
  Alcotest.run "prng"
    [
      ( "park-miller",
        [
          Alcotest.test_case "first outputs from seed 1" `Quick test_pm_known_sequence;
          Alcotest.test_case "CACM 10000-step check value" `Quick
            test_pm_park_miller_check_value;
          Alcotest.test_case "outputs stay in [1, m-1]" `Quick test_pm_range;
          Alcotest.test_case "seed normalization avoids state 0" `Quick
            test_pm_seed_normalization;
          Alcotest.test_case "set_state validates" `Quick test_pm_set_state;
          Alcotest.test_case "copy is independent" `Quick test_pm_copy_independent;
        ] );
      ( "splitmix64-xoshiro",
        [
          Alcotest.test_case "splitmix reference outputs" `Quick test_splitmix_reference;
          Alcotest.test_case "splitmix deterministic" `Quick test_splitmix_determinism;
          Alcotest.test_case "xoshiro nonzero & deterministic" `Quick
            test_xoshiro_nonzero_and_deterministic;
          Alcotest.test_case "xoshiro copy" `Quick test_xoshiro_copy;
        ] );
      ( "rng",
        [
          Alcotest.test_case "int_below bounds" `Quick test_int_below_bounds;
          Alcotest.test_case "int_below rejects bad n" `Quick test_int_below_errors;
          Alcotest.test_case "int_below beyond 2^31 (two-draw)" `Quick
            test_int_below_large_park_miller;
          Alcotest.test_case "int_below uniform (chi-square)" `Slow
            test_int_below_uniformity;
          Alcotest.test_case "int_in inclusive bounds" `Quick test_int_in;
          Alcotest.test_case "float_unit range and mean" `Quick test_float_unit;
          Alcotest.test_case "bool balanced" `Quick test_bool_balance;
          Alcotest.test_case "exponential mean" `Quick test_exponential;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle uniform first slot" `Slow
            test_shuffle_uniform_first_element;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "raw bounds and algo accessors" `Quick
            test_raw_bounds_and_algo;
          Alcotest.test_case "copy and split" `Quick test_copy_and_split;
          Alcotest.test_case "same seed, same stream" `Quick
            test_determinism_across_create;
          Alcotest.test_case "lag-1 serial correlation" `Slow test_serial_correlation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_int_below_in_range;
            qcheck_pm_state_stays_valid;
            qcheck_shuffle_preserves_elements;
          ] );
    ]
