(* Scenario-driven lottery-scheduling simulator: describe currencies,
   threads and a horizon in a small text file; get CPU shares, an execution
   timeline, and (optionally) a Chrome trace and a metrics summary.

     dune exec bin/lottosim.exe -- scenario.txt
     dune exec bin/lottosim.exe -- scenario.txt --stats --profile
     dune exec bin/lottosim.exe -- scenario.txt --trace out.json --csv out.csv
     dune exec bin/lottosim.exe -- scenario.txt --spans spans.json --prom metrics.prom

   Example scenario:

     currency alice 1000 base
     currency bob 1000 base
     thread a1 spin 1ms 100 alice
     thread a2 spin 1ms 200 alice
     thread b1 spin 1ms 300 bob
     thread ivy interactive 20ms 80ms 50 base
     run 60s

   --trace writes Chrome trace-event JSON loadable in chrome://tracing or
   https://ui.perfetto.dev (RPC requests appear as flow arrows across the
   thread tracks); --csv writes the same event window as CSV; --stats
   prints per-thread wins/quanta/wait-time percentiles plus an
   observed-vs-entitled share table with a chi-square fairness verdict;
   --spans writes the causal RPC span trees as their own Chrome trace;
   --prom writes a Prometheus text snapshot of the metrics; --profile
   prints where the host-clock cost of each slice went. *)

open Cmdliner

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let run path cpus trace_out csv_out stats spans_out prom_out profile =
  if cpus < 1 then `Error (true, "--cpus must be >= 1")
  else
  match Lotto_ctl.Scenario.parse_file path with
  | Error m -> `Error (false, m)
  | exception Sys_error m -> `Error (false, m)
  | Ok scenario -> (
      try
      let want_trace = trace_out <> None || csv_out <> None in
      let profile_clock =
        if profile then
          Some (fun () -> int_of_float (Unix.gettimeofday () *. 1e9))
        else None
      in
      let report =
        Lotto_ctl.Scenario.run ~cpus ~trace:want_trace ~stats
          ~spans:(spans_out <> None) ~prom:(prom_out <> None) ?profile_clock
          scenario
      in
      Printf.printf "after %s of virtual time:\n\n"
        (Format.asprintf "%a" Lotto_sim.Time.pp report.horizon);
      Printf.printf "  %-14s %12s %8s\n" "thread" "cpu (ticks)" "share";
      List.iter
        (fun (name, cpu, share) ->
          Printf.printf "  %-14s %12d %7.1f%%\n" name cpu (100. *. share))
        report.rows;
      print_newline ();
      print_string report.timeline;
      (match report.stats with
      | Some s ->
          print_newline ();
          print_string s
      | None -> ());
      (match report.profile with
      | Some p ->
          print_newline ();
          print_string p
      | None -> ());
      (match report.recorder with
      | Some r ->
          (match trace_out with
          | Some out ->
              write_file out (Lotto_obs.Recorder.to_chrome_json r);
              Printf.printf "\nwrote %d events to %s (chrome://tracing / Perfetto)\n"
                (Lotto_obs.Recorder.length r) out;
              if Lotto_obs.Recorder.dropped r > 0 then
                Printf.printf "warning: ring buffer dropped %d earlier events\n"
                  (Lotto_obs.Recorder.dropped r)
          | None -> ());
          (match csv_out with
          | Some out ->
              write_file out (Lotto_obs.Recorder.to_csv r);
              Printf.printf "wrote event CSV to %s\n" out
          | None -> ())
      | None -> ());
      (match (report.spans, spans_out) with
      | Some tracer, Some out ->
          write_file out (Lotto_obs.Span.to_chrome_json tracer);
          let st = Lotto_obs.Span.stats tracer in
          Printf.printf
            "wrote %d RPC spans to %s (%d closed, %d dropped, %d orphaned)\n"
            st.Lotto_obs.Span.st_total out st.Lotto_obs.Span.st_closed
            st.Lotto_obs.Span.st_dropped st.Lotto_obs.Span.st_orphaned
      | _ -> ());
      (match (report.prom, prom_out) with
      | Some text, Some out ->
          write_file out text;
          Printf.printf "wrote Prometheus snapshot to %s\n" out
      | _ -> ());
      `Ok ()
      with Sys_error m -> `Error (false, m))

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SCENARIO" ~doc:"Scenario file.")

let cpus_arg =
  Arg.(
    value & opt int 1
    & info [ "cpus" ] ~docv:"N"
        ~doc:"Number of virtual CPUs (default 1). With $(docv) > 1 the \
              lottery is sharded one shard per CPU — ticket-weighted \
              placement, hysteresis rebalancing and work stealing — and \
              the kernel runs its multi-CPU round loop; with 1 the \
              historical single-CPU scheduler runs and output is \
              byte-identical to older releases.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record the typed kernel event stream and write Chrome \
              trace-event JSON to $(docv) (open in chrome://tracing or \
              Perfetto).")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Write the recorded event stream as CSV to $(docv).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print per-thread scheduler metrics: lottery wins, quanta, \
              compensation activations, wait-time and dispatch-latency \
              percentiles, and an observed-vs-entitled CPU share table \
              checked with a chi-square fairness test.")

let spans_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spans" ] ~docv:"FILE"
        ~doc:"Trace every RPC request as a causal span (send, service, \
              reply; nested RPCs parented to the enclosing request) and \
              write the span trees as Chrome trace-event JSON to $(docv) \
              for Perfetto.")

let prom_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom" ] ~docv:"FILE"
        ~doc:"Write a Prometheus text-exposition snapshot of the \
              per-thread metrics (counters plus wait/dispatch latency \
              quantiles) to $(docv).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:"Profile the scheduler's own host-clock cost per phase \
              (valuation, draw, dispatch, event publish) and print the \
              breakdown.")

let cmd =
  let doc = "run a lottery-scheduling scenario file" in
  Cmd.v
    (Cmd.info "lottosim" ~doc)
    Term.(
      ret
        (const run $ path_arg $ cpus_arg $ trace_arg $ csv_arg $ stats_arg
       $ spans_arg $ prom_arg $ profile_arg))

let () = exit (Cmd.eval cmd)
