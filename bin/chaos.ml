(* Chaos soak driver: deterministic fault-injection sweeps over the canned
   scenarios, with the kernel invariant audit running between slices.

     chaos list
     chaos soak --seeds 200 --from 0
     chaos soak --scenario rpc --kill-prob 0.1 --repro-out fail.txt
     chaos replay rpc 1337 -v
*)

open Cmdliner
module Chaos = Lotto_chaos

let plan_of ~kill_prob ~perturb_prob ~sleep_prob ~yield_prob ~max_kills =
  {
    Chaos.Plan.default with
    kill_prob;
    perturb_prob;
    sleep_prob;
    yield_prob;
    max_kills;
  }

let scenarios_of = function
  | None -> Ok Chaos.Scenarios.all
  | Some name -> (
      match Chaos.Scenarios.find name with
      | Some sc -> Ok [ sc ]
      | None -> Error (Printf.sprintf "unknown scenario %S (try: chaos list)" name))

let list_cmd =
  let run () =
    List.iter
      (fun sc -> Printf.printf "%s\n" sc.Chaos.Scenarios.name)
      Chaos.Scenarios.all;
    Printf.printf "%s (excluded from sweeps: demonstrates a reintroduced bug)\n"
      Chaos.Scenarios.rpc_buggy.Chaos.Scenarios.name
  in
  Cmd.v (Cmd.info "list" ~doc:"List available scenarios.") Term.(const run $ const ())

let soak_run scenario seeds from cpus kill_prob perturb_prob sleep_prob
    yield_prob max_kills no_audit repro_out =
  match scenarios_of scenario with
  | Error m -> `Error (false, m)
  | Ok _ when cpus < 1 -> `Error (true, "--cpus must be >= 1")
  | Ok scenarios ->
      let plan = plan_of ~kill_prob ~perturb_prob ~sleep_prob ~yield_prob ~max_kills in
      let report =
        Chaos.Soak.soak ~plan ~audit:(not no_audit) ~cpus ~scenarios
          ~seeds:(Chaos.Soak.seed_range ~from ~count:seeds)
          ()
      in
      print_string (Chaos.Soak.report_to_string report);
      (match (Chaos.Soak.first_failure report, repro_out) with
      | Some (sc, seed), Some path ->
          let oc = open_out path in
          Printf.fprintf oc "scenario=%s\nseed=%d\ncpus=%d\nplan=%s\n" sc seed
            cpus
            (Chaos.Plan.to_string plan);
          close_out oc;
          Printf.printf "repro written to %s\n" path
      | _ -> ());
      if report.Chaos.Soak.failures = [] then `Ok () else `Error (false, "soak failed")

let replay_run name seed verbose cpus kill_prob perturb_prob sleep_prob
    yield_prob max_kills =
  match Chaos.Scenarios.find name with
  | None -> `Error (false, Printf.sprintf "unknown scenario %S" name)
  | Some _ when cpus < 1 -> `Error (true, "--cpus must be >= 1")
  | Some sc ->
      let plan = plan_of ~kill_prob ~perturb_prob ~sleep_prob ~yield_prob ~max_kills in
      let o = Chaos.Soak.run_one ~plan ~cpus sc ~seed in
      Printf.printf "scenario=%s seed=%d ended_at=%d idle=%d slices=%d%s\n"
        o.Chaos.Soak.scenario o.Chaos.Soak.seed
        o.Chaos.Soak.summary.Lotto_sim.Types.ended_at
        o.Chaos.Soak.summary.Lotto_sim.Types.idle_ticks
        o.Chaos.Soak.summary.Lotto_sim.Types.slices
        (if o.Chaos.Soak.summary.Lotto_sim.Types.deadlocked then " (deadlocked)"
         else "");
      if verbose then
        List.iter
          (fun (t, f) -> Printf.printf "  [%d] fault: %s\n" t f)
          o.Chaos.Soak.faults;
      List.iter
        (fun (t, v) -> Printf.printf "  [%d] violation: %s\n" t v)
        o.Chaos.Soak.violations;
      List.iter
        (fun (n, e) -> Printf.printf "  thread %s failed: %s\n" n e)
        o.Chaos.Soak.thread_failures;
      if Chaos.Soak.failed o then `Error (false, "run failed") else `Ok ()

let scenario_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"NAME" ~doc:"Restrict the sweep to one scenario.")

let seeds_arg =
  Arg.(value & opt int 200 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per scenario.")

let from_arg =
  Arg.(value & opt int 0 & info [ "from" ] ~docv:"SEED" ~doc:"First seed.")

let cpus_arg =
  Arg.(
    value & opt int 1
    & info [ "cpus" ] ~docv:"N"
        ~doc:"Virtual CPUs per run (default 1). With $(docv) > 1 each run \
              uses a sharded lottery (one shard per CPU) so fault \
              injection also exercises placement, rebalancing, stealing \
              and the sharding audit; repro pairs are per CPU count.")

let prob name default doc =
  Arg.(value & opt float default & info [ name ] ~docv:"P" ~doc)

let kill_arg = prob "kill-prob" Chaos.Plan.default.Chaos.Plan.kill_prob "Kill probability per boundary."
let perturb_arg = prob "perturb-prob" Chaos.Plan.default.Chaos.Plan.perturb_prob "Wait-list perturbation probability."
let sleep_arg = prob "sleep-prob" Chaos.Plan.default.Chaos.Plan.sleep_prob "Extra-sleep probability per fault point."
let yield_arg = prob "yield-prob" Chaos.Plan.default.Chaos.Plan.yield_prob "Extra-yield probability per fault point."

let max_kills_arg =
  Arg.(
    value
    & opt int Chaos.Plan.default.Chaos.Plan.max_kills
    & info [ "max-kills" ] ~docv:"N" ~doc:"Kill budget per run.")

let no_audit_arg =
  Arg.(value & flag & info [ "no-audit" ] ~doc:"Skip the per-slice invariant audit.")

let repro_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "repro-out" ] ~docv:"FILE"
        ~doc:"Write the first failing (scenario, seed) pair to FILE.")

let soak_cmd =
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Sweep seeds over scenarios with fault injection and per-slice \
          invariant auditing; nonzero exit and a minimal repro on failure.")
    Term.(
      ret
        (const soak_run $ scenario_opt $ seeds_arg $ from_arg $ cpus_arg
       $ kill_arg $ perturb_arg $ sleep_arg $ yield_arg $ max_kills_arg
       $ no_audit_arg $ repro_out_arg))

let name_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO")

let seed_pos = Arg.(required & pos 1 (some int) None & info [] ~docv:"SEED")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the injected-fault log.")

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-run one (scenario, seed) pair and print what happened.")
    Term.(
      ret
        (const replay_run $ name_pos $ seed_pos $ verbose_arg $ cpus_arg
       $ kill_arg $ perturb_arg $ sleep_arg $ yield_arg $ max_kills_arg))

let cmd =
  let doc = "deterministic chaos testing for the lottery-scheduling kernel" in
  Cmd.group (Cmd.info "chaos" ~doc) [ soak_cmd; replay_cmd; list_cmd ]

let () = exit (Cmd.eval cmd)
