(* Command-line driver regenerating every figure and table from the paper's
   evaluation, the §6 proposals implemented as extensions, and the
   ablations. With [--csv DIR] each experiment also writes a plottable
   <name>.csv. With [--jobs N] sweep-style experiments run their
   independent replications on N domains (results are merged by task
   index, so output is byte-identical to [--jobs 1]). *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

type entry = {
  e_name : string;
  descr : string;
  exec : csv_dir:string option -> jobs:int -> cpus:int -> unit;
}

(* run once; print the table; optionally serialize *)
let entry (type a) e_name descr (run : jobs:int -> cpus:int -> unit -> a)
    (print : a -> unit) (to_csv : a -> string) =
  {
    e_name;
    descr;
    exec =
      (fun ~csv_dir ~jobs ~cpus ->
        let t = run ~jobs ~cpus () in
        print t;
        match csv_dir with
        | None -> ()
        | Some dir ->
            let path = Filename.concat dir (e_name ^ ".csv") in
            write_file path (to_csv t);
            Printf.printf "  [csv written to %s]\n" path);
  }

let service_horizon () =
  match Sys.getenv_opt "LOTTO_SERVICE_HORIZON_S" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Some (n * 1_000_000)
      | _ -> None)
  | None -> None

let experiments =
  [
    entry "fig4" "relative rate accuracy (2 tasks, ratios 1..10)"
      (fun ~jobs ~cpus:_ () -> Lotto_exp.Fig4.run ~jobs ())
      Lotto_exp.Fig4.print Lotto_exp.Fig4.to_csv;
    entry "fig5" "fairness over 8s windows (2:1 for 200s)"
      (fun ~jobs ~cpus:_ () -> Lotto_exp.Fig5.run ~jobs ())
      Lotto_exp.Fig5.print Lotto_exp.Fig5.to_csv;
    entry "fig6" "Monte-Carlo with error^2 ticket inflation"
      (fun ~jobs:_ ~cpus:_ () -> Lotto_exp.Fig6.run ())
      Lotto_exp.Fig6.print Lotto_exp.Fig6.to_csv;
    entry "fig7" "client-server DB with ticket transfers (8:3:1)"
      (fun ~jobs:_ ~cpus:_ () -> Lotto_exp.Fig7.run ())
      Lotto_exp.Fig7.print Lotto_exp.Fig7.to_csv;
    entry "fig8" "video viewers, 3:2:1 changed to 3:1:2 mid-run"
      (fun ~jobs:_ ~cpus:_ () -> Lotto_exp.Fig8.run ())
      Lotto_exp.Fig8.print Lotto_exp.Fig8.to_csv;
    entry "fig9" "currencies insulate loads (B3 joins at half time)"
      (fun ~jobs:_ ~cpus:_ () -> Lotto_exp.Fig9.run ())
      Lotto_exp.Fig9.print Lotto_exp.Fig9.to_csv;
    entry "fig11" "lottery-scheduled mutex (groups 2:1)"
      (fun ~jobs:_ ~cpus:_ () -> Lotto_exp.Fig11.run ())
      Lotto_exp.Fig11.print Lotto_exp.Fig11.to_csv;
    entry "compensation" "sec. 4.5 compensation tickets on/off"
      (fun ~jobs ~cpus:_ () -> Lotto_exp.Compensation.run ~jobs ())
      Lotto_exp.Compensation.print Lotto_exp.Compensation.to_csv;
    entry "overhead" "sec. 5.6 scheduling overhead across policies"
      (fun ~jobs ~cpus:_ () -> Lotto_exp.Overhead.run ~jobs ())
      Lotto_exp.Overhead.print Lotto_exp.Overhead.to_csv;
    entry "mem" "sec. 6.2 inverse-lottery page replacement"
      (fun ~jobs:_ ~cpus:_ () -> Lotto_exp.Mem.run ())
      Lotto_exp.Mem.print Lotto_exp.Mem.to_csv;
    entry "io" "sec. 6 lottery-scheduled I/O bandwidth"
      (fun ~jobs:_ ~cpus:_ () -> Lotto_exp.Io.run ())
      Lotto_exp.Io.print Lotto_exp.Io.to_csv;
    entry "disk" "sec. 6 (ext) disk-bandwidth lotteries vs FCFS/SSTF"
      (fun ~jobs:_ ~cpus:_ () -> Lotto_exp.Disk_exp.run ())
      Lotto_exp.Disk_exp.print Lotto_exp.Disk_exp.to_csv;
    entry "switch" "sec. 6 (ext) virtual circuits on a congested switch port"
      (fun ~jobs:_ ~cpus:_ () -> Lotto_exp.Switch_exp.run ())
      Lotto_exp.Switch_exp.print Lotto_exp.Switch_exp.to_csv;
    entry "disk-service" "sec. 6 (ext) in-kernel disk with separate disk tickets"
      (fun ~jobs:_ ~cpus:_ () -> Lotto_exp.Disk_service_exp.run ())
      Lotto_exp.Disk_service_exp.print Lotto_exp.Disk_service_exp.to_csv;
    entry "manager" "sec. 6.3 manager threads across CPU and I/O"
      (fun ~jobs:_ ~cpus:_ () -> Lotto_exp.Manager_exp.run ())
      Lotto_exp.Manager_exp.print Lotto_exp.Manager_exp.to_csv;
    entry "search-length" "sec. 4.2 list-lottery search-length optimizations"
      (fun ~jobs ~cpus:_ () -> Lotto_exp.Search_length.run ~jobs ())
      Lotto_exp.Search_length.print Lotto_exp.Search_length.to_csv;
    entry "quantum" "ablation: quantum size vs short-term fairness"
      (fun ~jobs ~cpus:_ () -> Lotto_exp.Ablation_quantum.run ~jobs ())
      Lotto_exp.Ablation_quantum.print Lotto_exp.Ablation_quantum.to_csv;
    entry "variance" "ablation: lottery vs stride variance"
      (fun ~jobs ~cpus:_ () -> Lotto_exp.Ablation_variance.run ~jobs ())
      Lotto_exp.Ablation_variance.print Lotto_exp.Ablation_variance.to_csv;
    entry "mc-convergence" "ablation: Monte-Carlo funding function exponent"
      (fun ~jobs ~cpus:_ () -> Lotto_exp.Ablation_mc.run ~jobs ())
      Lotto_exp.Ablation_mc.print Lotto_exp.Ablation_mc.to_csv;
    (* CI's smoke step shortens the service experiments through
       LOTTO_SERVICE_HORIZON_S; unset, they run at full published scale. *)
    entry "service-insulation"
      "tenant insulation under saturation (bounded ports, per-tenant SLOs)"
      (fun ~jobs:_ ~cpus:_ () ->
        Lotto_exp.Service_insulation.run ?horizon:(service_horizon ()) ())
      Lotto_exp.Service_insulation.print Lotto_exp.Service_insulation.to_csv;
    entry "service-vs-decay" "multi-tenant SLOs: lottery currencies vs decay-usage"
      (fun ~jobs:_ ~cpus:_ () ->
        Lotto_exp.Service_vs_decay.run ?horizon:(service_horizon ()) ())
      Lotto_exp.Service_vs_decay.print Lotto_exp.Service_vs_decay.to_csv;
    entry "service-capacity" "capacity-planning curves: shed fraction vs offered load"
      (fun ~jobs ~cpus:_ () ->
        Lotto_exp.Service_capacity.run ?horizon:(service_horizon ()) ~jobs ())
      Lotto_exp.Service_capacity.print Lotto_exp.Service_capacity.to_csv;
    entry "smp-fairness" "global vs sharded lottery fairness on a multi-CPU kernel"
      (fun ~jobs:_ ~cpus () ->
        (* --cpus 1 (the do-nothing default) leaves the experiment at its
           documented 4-way sharded arm; > 1 overrides the shard count *)
        Lotto_exp.Smp_fairness.run ~cpus:(if cpus > 1 then cpus else 4) ())
      Lotto_exp.Smp_fairness.print Lotto_exp.Smp_fairness.to_csv;
  ]

open Cmdliner

let run_some names list_only csv_dir jobs cpus =
  if list_only then begin
    List.iter (fun e -> Printf.printf "%-14s %s\n" e.e_name e.descr) experiments;
    `Ok ()
  end
  else if jobs < 1 then `Error (false, "--jobs must be at least 1")
  else if cpus < 1 then `Error (false, "--cpus must be at least 1")
  else begin
    (match csv_dir with
    | Some dir -> Lotto_exp.Common.mkdir_p dir
    | None -> ());
    let targets =
      match names with
      | [] -> Some experiments
      | names -> (
          try
            Some
              (List.map
                 (fun n -> List.find (fun e -> e.e_name = n) experiments)
                 names)
          with Not_found -> None)
    in
    match targets with
    | None -> `Error (false, "unknown experiment; try --list")
    | Some targets ->
        List.iter (fun e -> e.exec ~csv_dir ~jobs ~cpus) targets;
        `Ok ()
  end

let names_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT" ~doc:"Experiments to run (default: all).")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List available experiments.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR" ~doc:"Also write <experiment>.csv files to $(docv).")

let jobs_arg =
  Arg.(
    value
    & opt int (Lotto_par.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run each sweep experiment's independent replications on $(docv) \
           domains (default: the recommended domain count for this machine). \
           Results are merged by task index, so output is byte-identical to \
           --jobs 1.")

let cpus_arg =
  Arg.(
    value & opt int 1
    & info [ "cpus" ] ~docv:"N"
        ~doc:
          "Virtual CPUs for the multi-CPU experiments (currently \
           smp-fairness, whose sharded arm defaults to 4 when $(docv) is \
           1). The single-CPU figure reproductions ignore it, so all \
           existing invocations and golden outputs are unchanged.")

let cmd =
  let doc = "Regenerate the paper's evaluation figures and tables" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(
      ret (const run_some $ names_arg $ list_arg $ csv_arg $ jobs_arg $ cpus_arg))

let () = exit (Cmd.eval cmd)
